#include "ckpt/ckpt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"

namespace pstk::ckpt {

SimTime YoungDalyInterval(SimTime write_cost, SimTime mtbf) {
  PSTK_CHECK_MSG(mtbf > 0, "MTBF must be positive");
  if (write_cost <= 0) return 0;
  const SimTime tau = std::sqrt(2.0 * write_cost * mtbf);
  return std::max(tau, write_cost);
}

// ---------------------------------------------------------------------------
// SnapshotStore
// ---------------------------------------------------------------------------

SnapshotStore::SnapshotStore(int nranks) : nranks_(nranks) {
  PSTK_CHECK_MSG(nranks_ > 0, "store needs at least one rank");
}

bool SnapshotStore::RecordWrite(int epoch, int rank, serde::Buffer fragment,
                                std::vector<int> copies) {
  PSTK_CHECK_MSG(rank >= 0 && rank < nranks_, "bad rank " << rank);
  auto [it, created] = epochs_.try_emplace(epoch);
  Epoch& e = it->second;
  if (created) e.fragments.resize(static_cast<std::size_t>(nranks_));
  FragmentEntry& entry = e.fragments[static_cast<std::size_t>(rank)];
  // A replay after rollback rewrites fragments a failed attempt left
  // behind; the write count must not double-count those.
  const bool first_write = !entry.written;
  entry.data = std::move(fragment);
  entry.copies = std::move(copies);
  entry.written = true;
  if (first_write) ++e.written;
  return first_write && e.written == nranks_;
}

void SnapshotStore::DropNode(int node) {
  for (auto& [epoch, e] : epochs_) {
    for (FragmentEntry& entry : e.fragments) {
      entry.copies.erase(
          std::remove(entry.copies.begin(), entry.copies.end(), node),
          entry.copies.end());
    }
  }
}

std::optional<int> SnapshotStore::LatestRestorableEpoch() const {
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    const Epoch& e = it->second;
    if (e.written < nranks_) continue;
    const bool all_alive = std::all_of(
        e.fragments.begin(), e.fragments.end(),
        [](const FragmentEntry& f) { return !f.copies.empty(); });
    if (all_alive) return it->first;
  }
  return std::nullopt;
}

const std::vector<int>& SnapshotStore::FragmentCopies(int epoch,
                                                      int rank) const {
  static const std::vector<int> kNone;
  const auto it = epochs_.find(epoch);
  if (it == epochs_.end()) return kNone;
  const auto& fragments = it->second.fragments;
  if (rank < 0 || rank >= static_cast<int>(fragments.size())) return kNone;
  return fragments[static_cast<std::size_t>(rank)].copies;
}

const serde::Buffer* SnapshotStore::Fragment(int epoch, int rank) const {
  const auto it = epochs_.find(epoch);
  if (it == epochs_.end()) return nullptr;
  const auto& fragments = it->second.fragments;
  if (rank < 0 || rank >= static_cast<int>(fragments.size())) return nullptr;
  const FragmentEntry& entry = fragments[static_cast<std::size_t>(rank)];
  return entry.written && !entry.copies.empty() ? &entry.data : nullptr;
}

// ---------------------------------------------------------------------------
// CheckpointCoordinator
// ---------------------------------------------------------------------------

CheckpointCoordinator::CheckpointCoordinator(cluster::Cluster& cluster,
                                             SnapshotStore& store,
                                             const CkptPolicy& policy)
    : cluster_(cluster), store_(store), policy_(policy) {
  restore_epoch_ = store_.LatestRestorableEpoch();
  obs::Registry& reg = cluster_.engine().obs();
  tags_.writes = reg.Intern("ckpt.writes");
  tags_.bytes = reg.Intern("ckpt.bytes");
  tags_.replica_bytes = reg.Intern("ckpt.replica_bytes");
  tags_.commits = reg.Intern("ckpt.commits");
  tags_.restores = reg.Intern("ckpt.restores");
  tags_.write_time = reg.Intern("ckpt.time.write");
  if (policy_.target_disk == Target::kLocalSsd && policy_.replicate) {
    fabric_ = cluster_.fabric();
  }
}

std::shared_ptr<storage::Disk> CheckpointCoordinator::TargetDisk(int node) {
  if (policy_.target_disk == Target::kNfs) {
    if (nfs_ == nullptr) {
      nfs_ = std::make_shared<storage::Disk>(storage::DiskParams::NfsServer());
      nfs_->AttachObs(&cluster_.engine().obs(), "storage.nfs");
    }
    return nfs_;
  }
  return cluster_.scratch_disk(node);
}

const serde::Buffer* CheckpointCoordinator::Restore(sim::Context& ctx,
                                                    int rank, int node) {
  if (!restore_epoch_.has_value()) return nullptr;
  const serde::Buffer* fragment = store_.Fragment(*restore_epoch_, rank);
  PSTK_CHECK_MSG(fragment != nullptr,
                 "restore epoch " << *restore_epoch_
                                  << " lost rank " << rank << "'s fragment");
  const Bytes modeled = cluster_.Modeled(fragment->size());
  // Read the fragment back from wherever a copy survived.
  SimTime ready;
  if (policy_.target_disk == Target::kNfs) {
    ready = TargetDisk(node)->Read(modeled, ctx.now());
  } else {
    // Prefer the local copy; otherwise stream from the buddy node.
    const auto& copies = store_.FragmentCopies(*restore_epoch_, rank);
    int source = copies.empty() ? node : copies.front();
    for (int copy : copies) {
      if (copy == node) source = node;
    }
    ready = cluster_.scratch_disk(source)->Read(modeled, ctx.now());
    if (source != node) {
      if (fabric_ == nullptr) fabric_ = cluster_.fabric();
      const auto times = fabric_->Transfer(source, node, modeled, ready);
      ctx.Compute(times.receiver_cpu);
      ready = times.arrival;
    }
  }
  ctx.SleepUntil(ready);
  ctx.Compute(static_cast<double>(modeled) * policy_.serialize_cpu_per_byte);
  cluster_.engine().obs().Add(tags_.restores);
  cluster_.engine().verify().OnCkptRestore(rank, *restore_epoch_, ctx.now());
  return fragment;
}

void CheckpointCoordinator::Checkpoint(sim::Context& ctx, int rank, int node,
                                       int epoch,
                                       const serde::Buffer& state) {
  // First rank reaching this boundary decides whether the epoch is due;
  // collectives order boundaries, so every rank sees the same decision.
  auto [it, first_arrival] = due_.try_emplace(epoch, false);
  if (first_arrival) {
    const SimTime now = ctx.now();
    if (!last_due_time_.has_value()) {
      last_due_time_ = now;  // anchor: the interval counts from entry
    } else if (policy_.interval > 0 &&
               now - *last_due_time_ >= policy_.interval) {
      it->second = true;
      last_due_time_ = now;
    }
  }
  if (!it->second) return;

  obs::Registry& reg = cluster_.engine().obs();
  const Bytes modeled = cluster_.Modeled(state.size());
  const SimTime start = ctx.now();
  ctx.Compute(static_cast<double>(modeled) * policy_.serialize_cpu_per_byte);

  std::vector<int> copies;
  SimTime done;
  if (policy_.target_disk == Target::kNfs) {
    done = TargetDisk(node)->Write(modeled, ctx.now());
    copies.push_back(SnapshotStore::kNfsNode);
  } else {
    done = cluster_.scratch_disk(node)->Write(modeled, ctx.now());
    copies.push_back(node);
    if (policy_.replicate) {
      const int buddy = (node + 1) % cluster_.nodes();
      if (buddy != node && !cluster_.NodeFailed(buddy)) {
        const auto times = fabric_->Transfer(node, buddy, modeled, ctx.now());
        ctx.Compute(times.sender_cpu);
        const SimTime replica_done =
            cluster_.scratch_disk(buddy)->Write(modeled, times.arrival);
        done = std::max(done, replica_done);
        copies.push_back(buddy);
        reg.Add(tags_.replica_bytes, modeled);
      }
    }
  }
  ctx.SleepUntil(done);

  reg.Add(tags_.writes);
  reg.Add(tags_.bytes, modeled);
  reg.Observe(tags_.write_time, ctx.now() - start);
  bytes_written_ += modeled;
  cluster_.engine().verify().OnCkptWrite(rank, epoch, modeled, ctx.now());

  if (store_.RecordWrite(epoch, rank, state, std::move(copies))) {
    ++commits_;
    commit_times_[epoch] = ctx.now();
    reg.Add(tags_.commits);
    cluster_.engine().verify().OnCkptCommit(epoch, store_.nranks(),
                                            store_.nranks(), ctx.now());
  }
}

std::optional<SimTime> CheckpointCoordinator::CommitTime(int epoch) const {
  const auto it = commit_times_.find(epoch);
  if (it == commit_times_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// RestartManager
// ---------------------------------------------------------------------------

RestartManager::RestartManager(CkptPolicy policy, sim::FaultPlan faults)
    : policy_(policy), faults_(std::move(faults)) {
  std::stable_sort(faults_.events.begin(), faults_.events.end(),
                   [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
                     return a.time < b.time;
                   });
}

Result<RecoveryOutcome> RestartManager::RunLoop(
    const HpcJob& job,
    const std::function<std::function<SimTime()>(
        sim::Engine&, cluster::Cluster&, CheckpointCoordinator&)>& spawn) {
  PSTK_CHECK_MSG(job.procs > 0 && job.procs_per_node > 0,
                 "HpcJob needs procs and procs_per_node");
  SnapshotStore store(job.procs);
  RecoveryOutcome out;
  SimTime global = 0;
  std::size_t next_fault = 0;
  for (int attempt = 0; attempt <= policy_.max_restarts; ++attempt) {
    sim::Engine engine(/*seed=*/1, job.backend, job.shard_options);
    cluster::Cluster cluster(engine, job.spec);
    if (job.on_attempt) job.on_attempt(engine, cluster);
    CheckpointCoordinator coordinator(cluster, store, policy_);
    // A lost node wipes its scratch — and the snapshot fragments on it.
    cluster.SubscribeNodeFailure(
        [&store](int node, SimTime) { store.DropNode(node); });
    // Faults that land while the job sits in the requeue hit no processes;
    // inject only the earliest fault this attempt can experience. Once it
    // kills the job the rest belong to later attempts.
    while (next_fault < faults_.events.size() &&
           faults_.events[next_fault].time < global) {
      ++next_fault;
    }
    if (next_fault < faults_.events.size()) {
      const sim::FaultEvent& ev = faults_.events[next_fault];
      cluster.FailNode(ev.node, ev.time - global);
    }
    auto job_end = spawn(engine, cluster, coordinator);
    const sim::RunResult run = engine.Run();
    ++out.attempts;
    out.checkpoints_committed += coordinator.commits();
    out.snapshot_bytes += coordinator.bytes_written();
    const bool completed = run.killed == 0;
    if (job.on_attempt_end != nullptr) {
      job.on_attempt_end(engine, attempt, completed);
    }
    if (completed) {
      if (!run.status.ok()) return run.status;
      out.completed = true;
      out.time_to_solution = global + job_end();
      return out;
    }

    // The failure consumed this attempt: account the lost work and requeue.
    ++out.restarts;
    ++next_fault;
    const SimTime span = run.end_time;
    SimTime replay_from = 0;
    if (const auto epoch = store.LatestRestorableEpoch()) {
      if (const auto commit = coordinator.CommitTime(*epoch)) {
        replay_from = *commit;
      }
    }
    const SimTime rollback = std::max<SimTime>(span - replay_from, 0);
    out.rollback_work += rollback;
    obs::Registry& reg = engine.obs();
    reg.Add(reg.Intern("recovery.restarts"));
    reg.Add(reg.Intern("recovery.rollback_work_ms"),
            static_cast<std::uint64_t>(rollback * 1e3));
    PSTK_INFO("ckpt") << "attempt " << attempt << " lost at t=" << span
                      << " (global " << global + span << "); rolling back "
                      << rollback << "s of work, restart in "
                      << policy_.restart_delay << "s";
    global += span + policy_.restart_delay;
  }
  out.completed = false;
  out.time_to_solution = global;
  return out;  // did-not-finish within max_restarts: data, not an error
}

Result<RecoveryOutcome> RestartManager::RunMpi(const HpcJob& job,
                                               const MpiBody& body,
                                               const mpi::MpiOptions& options) {
  return RunLoop(job, [&](sim::Engine&, cluster::Cluster& cluster,
                          CheckpointCoordinator& coordinator) {
    auto world = std::make_shared<mpi::World>(cluster, job.procs,
                                              job.procs_per_node, options);
    CheckpointCoordinator* coord = &coordinator;
    world->SpawnRanks([coord, &body](mpi::Comm& comm) { body(comm, *coord); });
    return std::function<SimTime()>(
        [world] { return world->job_end_time(); });
  });
}

Result<RecoveryOutcome> RestartManager::RunShmem(
    const HpcJob& job, const ShmemBody& body,
    const shmem::ShmemOptions& options) {
  return RunLoop(job, [&](sim::Engine&, cluster::Cluster& cluster,
                          CheckpointCoordinator& coordinator) {
    auto world = std::make_shared<shmem::ShmemWorld>(
        cluster, job.procs, job.procs_per_node, options);
    CheckpointCoordinator* coord = &coordinator;
    world->SpawnPes([coord, &body](shmem::Pe& pe) { body(pe, *coord); });
    return std::function<SimTime()>(
        [world] { return world->job_end_time(); });
  });
}

}  // namespace pstk::ckpt
