#include "storage/localfs.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::storage {

LocalFs::LocalFs(std::shared_ptr<Disk> disk, double data_scale)
    : disk_(std::move(disk)), data_scale_(data_scale) {
  PSTK_CHECK(disk_ != nullptr);
  PSTK_CHECK_MSG(data_scale_ > 0 && data_scale_ <= 1.0,
                 "data_scale must be in (0, 1], got " << data_scale_);
}

void LocalFs::Install(const std::string& path, std::string content) {
  files_[path] = buf::Bytes::FromString(std::move(content));
}

Status LocalFs::Write(sim::Context& ctx, const std::string& path,
                      std::string_view content) {
  if (disk_->failed()) return Unavailable("disk failed: " + path);
  const SimTime done = disk_->Write(Modeled(content.size()), ctx.now());
  ctx.SleepUntil(done);
  files_[path] = buf::Bytes::Copy(content);
  return OkStatus();
}

Status LocalFs::Append(sim::Context& ctx, const std::string& path,
                       std::string_view content) {
  if (disk_->failed()) return Unavailable("disk failed: " + path);
  const SimTime done = disk_->Write(Modeled(content.size()), ctx.now());
  ctx.SleepUntil(done);
  // Copy-on-append into a fresh chunk: outstanding aliases of the old
  // version stay stable.
  auto it = files_.find(path);
  std::string grown =
      it == files_.end() ? std::string() : it->second.ToString();
  grown.append(content.data(), content.size());
  files_[path] = buf::Bytes::FromString(std::move(grown));
  return OkStatus();
}

Result<buf::Bytes> LocalFs::ReadBytes(sim::Context& ctx,
                                      const std::string& path, Bytes offset,
                                      Bytes length) {
  if (disk_->failed()) return Unavailable("disk failed: " + path);
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  const buf::Bytes& data = it->second;
  if (offset > data.size()) return OutOfRange("read past EOF: " + path);
  const Bytes available = data.size() - offset;
  const Bytes n = std::min(length, available);
  const SimTime done = disk_->Read(Modeled(n), ctx.now());
  ctx.SleepUntil(done);
  return data.Slice(offset, n);
}

Result<std::string> LocalFs::Read(sim::Context& ctx, const std::string& path,
                                  Bytes offset, Bytes length) {
  auto bytes = ReadBytes(ctx, path, offset, length);
  if (!bytes.ok()) return bytes.status();
  return bytes.value().ToString();
}

Result<std::string> LocalFs::ReadAll(sim::Context& ctx,
                                     const std::string& path) {
  auto size = Size(path);
  if (!size.ok()) return size.status();
  return Read(ctx, path, 0, size.value());
}

const buf::Bytes* LocalFs::Peek(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

bool LocalFs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Result<Bytes> LocalFs::Size(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  return Bytes{it->second.size()};
}

Result<Bytes> LocalFs::ModeledSize(const std::string& path) const {
  auto size = Size(path);
  if (!size.ok()) return size.status();
  return Modeled(size.value());
}

Status LocalFs::Delete(const std::string& path) {
  if (files_.erase(path) == 0) return NotFound("no such file: " + path);
  return OkStatus();
}

std::vector<std::string> LocalFs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, content] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

}  // namespace pstk::storage
