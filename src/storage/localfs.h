// Simulated per-node local filesystem (the "scratch" filesystem in the
// paper's experiments). Files hold real bytes; I/O time is charged against
// the node's Disk using *modeled* sizes: actual bytes divided by the run's
// data-scale factor, so an 80 MiB staged file can stand in for an 80 GB one
// while every byte is still really read and processed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "buf/bytes.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/engine.h"
#include "storage/disk.h"

namespace pstk::storage {

class LocalFs {
 public:
  /// `data_scale` in (0, 1]: modeled bytes = actual bytes / data_scale.
  LocalFs(std::shared_ptr<Disk> disk, double data_scale = 1.0);

  /// Stage a file instantaneously (no simulated I/O) — used to pre-load
  /// benchmark inputs that "were already on disk" before the job starts.
  void Install(const std::string& path, std::string content);

  /// Create/overwrite a file, charging write time on the node's disk.
  Status Write(sim::Context& ctx, const std::string& path,
               std::string_view content);
  /// Append, charging write time for the appended bytes only.
  Status Append(sim::Context& ctx, const std::string& path,
                std::string_view content);

  /// Read `length` actual bytes at `offset`, charging read time. A length
  /// past EOF is truncated (like pread). The result aliases the stored
  /// file (a refcount bump, no payload copy) and stays valid across later
  /// writes/deletes of the path.
  Result<buf::Bytes> ReadBytes(sim::Context& ctx, const std::string& path,
                               Bytes offset, Bytes length);
  /// Materializing convenience wrappers over ReadBytes (one counted copy).
  Result<std::string> Read(sim::Context& ctx, const std::string& path,
                           Bytes offset, Bytes length);
  Result<std::string> ReadAll(sim::Context& ctx, const std::string& path);

  /// Zero-cost handle to the stored bytes (no simulated I/O charged) for
  /// record readers that must inspect boundaries before issuing the real
  /// (charged) read. Returns nullptr if the file does not exist.
  [[nodiscard]] const buf::Bytes* Peek(const std::string& path) const;

  [[nodiscard]] bool Exists(const std::string& path) const;
  /// Actual stored size in bytes.
  [[nodiscard]] Result<Bytes> Size(const std::string& path) const;
  /// Modeled (scaled-up) size used by cost models and 2 GB-limit checks.
  [[nodiscard]] Result<Bytes> ModeledSize(const std::string& path) const;
  Status Delete(const std::string& path);
  [[nodiscard]] std::vector<std::string> List(const std::string& prefix) const;

  [[nodiscard]] Disk& disk() { return *disk_; }
  [[nodiscard]] double data_scale() const { return data_scale_; }
  /// Convert actual to modeled bytes under this filesystem's scale.
  [[nodiscard]] Bytes Modeled(Bytes actual) const {
    return static_cast<Bytes>(static_cast<double>(actual) / data_scale_);
  }

 private:
  std::shared_ptr<Disk> disk_;
  double data_scale_;
  /// Each file is one flat immutable chunk; writes replace the chunk, so
  /// outstanding read aliases keep seeing the bytes they were given.
  std::map<std::string, buf::Bytes> files_;
};

}  // namespace pstk::storage
