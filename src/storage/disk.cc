#include "storage/disk.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::storage {

DiskParams DiskParams::CometScratchSsd() {
  DiskParams p;
  p.name = "comet-scratch-ssd";
  // Calibrated so one node streams ~1 GB in ~1.05 s (Table II: MPI reads
  // 8 GB across 8 nodes in 1.2 s including the counting pass).
  p.read_bandwidth = MBps(980);
  p.write_bandwidth = MBps(620);
  p.op_latency = Micros(80);
  p.contention_threshold = 8;
  p.contention_penalty = 0.05;
  return p;
}

DiskParams DiskParams::NfsServer() {
  DiskParams p;
  p.name = "nfs-server";
  p.read_bandwidth = MBps(350);
  p.write_bandwidth = MBps(250);
  p.op_latency = Millis(1);  // network round trip to the filer
  p.contention_threshold = 4;
  p.contention_penalty = 0.15;
  return p;
}

void Disk::AttachObs(obs::Registry* registry, std::string_view scope) {
  obs_ = registry;
  if (obs_ == nullptr) return;
  const std::string prefix(scope);
  tag_reads_ = obs_->Intern(prefix + ".reads");
  tag_writes_ = obs_->Intern(prefix + ".writes");
  tag_bytes_read_ = obs_->Intern(prefix + ".bytes_read");
  tag_bytes_written_ = obs_->Intern(prefix + ".bytes_written");
  tag_op_latency_ = obs_->Intern(prefix + ".op_latency");
  tag_queue_depth_ = obs_->Intern(prefix + ".queue_depth");
}

SimTime Disk::Transfer(Bytes bytes, Rate bandwidth, SimTime t) {
  PSTK_CHECK_MSG(!failed_, "I/O on failed disk " << params_.name);
  SimTime duration =
      params_.op_latency + static_cast<double>(bytes) / bandwidth;
  // Contention is about *queued-together* requests: an op's pressure window
  // spans from its issue time until it would drain, so ops issued while the
  // device is still serving earlier ones count as overlapping readers.
  const SimTime drain = timeline_.Peek(t, duration);
  const std::size_t overlap = window_.Record(t, drain);
  if (overlap >= params_.contention_threshold) {
    const double extra = static_cast<double>(
        overlap - params_.contention_threshold + 1);
    duration *= 1.0 + params_.contention_penalty * extra;
  }
  const SimTime done = timeline_.Acquire(t, duration);
  if (obs_ != nullptr) {
    obs_->Observe(tag_op_latency_, done - t);
    obs_->Observe(tag_queue_depth_, static_cast<double>(overlap));
  }
  return done;
}

SimTime Disk::Read(Bytes bytes, SimTime t) {
  bytes_read_ += bytes;
  if (obs_ != nullptr) {
    obs_->Add(tag_reads_);
    obs_->Add(tag_bytes_read_, bytes);
  }
  return Transfer(bytes, params_.read_bandwidth, t);
}

SimTime Disk::Write(Bytes bytes, SimTime t) {
  bytes_written_ += bytes;
  if (obs_ != nullptr) {
    obs_->Add(tag_writes_);
    obs_->Add(tag_bytes_written_, bytes);
  }
  return Transfer(bytes, params_.write_bandwidth, t);
}

}  // namespace pstk::storage
