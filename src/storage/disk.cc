#include "storage/disk.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::storage {

DiskParams DiskParams::CometScratchSsd() {
  DiskParams p;
  p.name = "comet-scratch-ssd";
  // Calibrated so one node streams ~1 GB in ~1.05 s (Table II: MPI reads
  // 8 GB across 8 nodes in 1.2 s including the counting pass).
  p.read_bandwidth = MBps(980);
  p.write_bandwidth = MBps(620);
  p.op_latency = Micros(80);
  p.contention_threshold = 8;
  p.contention_penalty = 0.05;
  return p;
}

DiskParams DiskParams::NfsServer() {
  DiskParams p;
  p.name = "nfs-server";
  p.read_bandwidth = MBps(350);
  p.write_bandwidth = MBps(250);
  p.op_latency = Millis(1);  // network round trip to the filer
  p.contention_threshold = 4;
  p.contention_penalty = 0.15;
  return p;
}

SimTime Disk::Transfer(Bytes bytes, Rate bandwidth, SimTime t) {
  PSTK_CHECK_MSG(!failed_, "I/O on failed disk " << params_.name);
  SimTime duration =
      params_.op_latency + static_cast<double>(bytes) / bandwidth;
  // Contention is about *queued-together* requests: an op's pressure window
  // spans from its issue time until it would drain, so ops issued while the
  // device is still serving earlier ones count as overlapping readers.
  const SimTime drain = timeline_.Peek(t, duration);
  const std::size_t overlap = window_.Record(t, drain);
  if (overlap >= params_.contention_threshold) {
    const double extra = static_cast<double>(
        overlap - params_.contention_threshold + 1);
    duration *= 1.0 + params_.contention_penalty * extra;
  }
  return timeline_.Acquire(t, duration);
}

SimTime Disk::Read(Bytes bytes, SimTime t) {
  bytes_read_ += bytes;
  return Transfer(bytes, params_.read_bandwidth, t);
}

SimTime Disk::Write(Bytes bytes, SimTime t) {
  bytes_written_ += bytes;
  return Transfer(bytes, params_.write_bandwidth, t);
}

}  // namespace pstk::storage
