// Block-device cost models.
//
// A Disk serializes I/O on a FIFO timeline (aggregate-bandwidth sharing)
// and additionally degrades when too many operations overlap — modeling
// the SSD read-contention effect the paper highlights (§III-C cites
// threshold-based contention control for parallel readers on SSDs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.h"
#include "obs/obs.h"
#include "sim/timeline.h"

namespace pstk::storage {

struct DiskParams {
  std::string name;
  Rate read_bandwidth = MBps(500);
  Rate write_bandwidth = MBps(400);
  SimTime op_latency = Micros(80);
  /// Overlapping ops beyond this threshold slow down...
  std::size_t contention_threshold = 8;
  /// ...by this fraction per extra overlapping op.
  double contention_penalty = 0.05;

  /// Comet's 320 GB local scratch SSD (Table I).
  static DiskParams CometScratchSsd();
  /// A shared NFS server backed by spinning disks + network head.
  static DiskParams NfsServer();
};

class Disk {
 public:
  explicit Disk(DiskParams params) : params_(std::move(params)) {}

  /// Issue a read of `bytes` ready at time `t`; returns completion time.
  SimTime Read(Bytes bytes, SimTime t);
  SimTime Write(Bytes bytes, SimTime t);

  /// Fault injection: a failed disk rejects I/O (callers check first).
  void set_failed(bool failed) { failed_ = failed; }
  [[nodiscard]] bool failed() const { return failed_; }

  [[nodiscard]] const DiskParams& params() const { return params_; }
  [[nodiscard]] Bytes bytes_read() const { return bytes_read_; }
  [[nodiscard]] Bytes bytes_written() const { return bytes_written_; }
  [[nodiscard]] SimTime busy_time() const { return timeline_.busy_time(); }

  /// Publish per-op metrics (read/write counters, op-latency and
  /// queue-depth histograms, scoped `<scope>.*`) into `registry`.
  /// Optional: a detached disk (nullptr) just skips publication.
  void AttachObs(obs::Registry* registry, std::string_view scope);

 private:
  SimTime Transfer(Bytes bytes, Rate bandwidth, SimTime t);

  DiskParams params_;
  sim::Timeline timeline_;
  sim::ConcurrencyWindow window_;
  bool failed_ = false;
  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;

  obs::Registry* obs_ = nullptr;
  obs::TagId tag_reads_ = obs::kNoTag;
  obs::TagId tag_writes_ = obs::kNoTag;
  obs::TagId tag_bytes_read_ = obs::kNoTag;
  obs::TagId tag_bytes_written_ = obs::kNoTag;
  obs::TagId tag_op_latency_ = obs::kNoTag;
  obs::TagId tag_queue_depth_ = obs::kNoTag;
};

}  // namespace pstk::storage
