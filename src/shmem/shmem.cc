#include "shmem/shmem.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::shmem {

namespace {
constexpr int kCollTagBase = 0x40000000;

bool Compare(std::int64_t lhs, Cmp cmp, std::int64_t rhs) {
  switch (cmp) {
    case Cmp::kEq: return lhs == rhs;
    case Cmp::kNe: return lhs != rhs;
    case Cmp::kGt: return lhs > rhs;
    case Cmp::kGe: return lhs >= rhs;
    case Cmp::kLt: return lhs < rhs;
    case Cmp::kLe: return lhs <= rhs;
  }
  return false;
}
}  // namespace

// ---------------------------------------------------------------------------
// ShmemWorld
// ---------------------------------------------------------------------------

ShmemWorld::ShmemWorld(cluster::Cluster& cluster, int npes, int pes_per_node,
                       ShmemOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      npes_(npes),
      pes_per_node_(pes_per_node) {
  PSTK_CHECK_MSG(npes_ >= 1, "need at least one PE");
  PSTK_CHECK_MSG(pes_per_node_ >= 1, "pes_per_node must be >= 1");
  if (!options_.placement.empty()) {
    PSTK_CHECK_MSG(options_.placement.size() == static_cast<std::size_t>(npes_),
                   "placement names " << options_.placement.size()
                                      << " PEs for an " << npes_ << "-PE job");
    for (int node : options_.placement) {
      PSTK_CHECK_MSG(node >= 0 && node < cluster_.nodes(),
                     "placement node " << node << " out of range");
    }
  } else {
    const int needed = (npes_ + pes_per_node_ - 1) / pes_per_node_;
    PSTK_CHECK_MSG(needed <= cluster_.nodes(),
                   "not enough nodes for " << npes_ << " PEs");
  }
  const net::TransportParams transport =
      options_.transport.value_or(cluster_.spec().transport);
  fabric_ = cluster_.fabric(transport);
  network_ = std::make_unique<net::Network>(cluster_.engine(), fabric_);
  heaps_.resize(static_cast<std::size_t>(npes_));
  alloc_cursor_.assign(static_cast<std::size_t>(npes_), 0);
  waiters_.assign(static_cast<std::size_t>(npes_), sim::kNoPid);
}

void ShmemWorld::SpawnPes(PeBody body) {
  for (int pe = 0; pe < npes_; ++pe) {
    const int node = NodeOfPe(pe);
    network_->CreateEndpoint(pe, node);
    cluster_.engine().Spawn(
        options_.name + "-pe-" + std::to_string(pe),
        [this, pe, body](sim::Context& ctx) {
          ctx.SleepFor(options_.startup_cost);  // launcher + shmem_init
          Pe handle(*this, ctx, pe);
          body(handle);
          handle.BarrierAll();  // shmem_finalize
          job_end_ = std::max(job_end_, ctx.now());
          if (++pes_done_ == npes_ && on_done_) on_done_(ctx.now());
        },
        node);
  }
}

Result<SimTime> ShmemWorld::RunSpmd(PeBody body) {
  SpawnPes(std::move(body));
  const sim::RunResult result = cluster_.engine().Run();
  if (result.killed > 0) {
    return Aborted("SHMEM job lost " + std::to_string(result.killed) +
                   " PE(s); job aborted");
  }
  if (!result.status.ok()) return result.status;
  return job_end_;
}

// ---------------------------------------------------------------------------
// Pe
// ---------------------------------------------------------------------------

int Pe::n_pes() const { return world_.npes_; }

net::Endpoint& Pe::endpoint() { return world_.network_->endpoint(pe_); }

Bytes Pe::SymMalloc(Bytes bytes, Bytes align) {
  auto& cursor = world_.alloc_cursor_[static_cast<std::size_t>(pe_)];
  if (cursor == world_.layout_.size()) {
    // First PE to reach this allocation site defines the layout.
    Bytes offset = world_.heap_top_;
    offset = (offset + align - 1) / align * align;
    world_.layout_.push_back(ShmemWorld::Allocation{offset, bytes});
    world_.heap_top_ = offset + bytes;
    for (auto& heap : world_.heaps_) {
      heap.resize(static_cast<std::size_t>(world_.heap_top_), 0);
    }
  } else {
    PSTK_CHECK_MSG(world_.layout_[cursor].bytes == bytes,
                   "asymmetric shmem_malloc: PE " << pe_ << " requested "
                                                  << bytes << " bytes");
  }
  return world_.layout_[cursor++].offset;
}

std::uint8_t* Pe::HeapAt(int pe, Bytes offset) {
  auto& heap = world_.heaps_[static_cast<std::size_t>(pe)];
  PSTK_CHECK_MSG(offset <= heap.size(), "symmetric heap overrun");
  return heap.data() + offset;
}

void Pe::RawPut(Bytes offset, const void* src, Bytes bytes, int target_pe) {
  PSTK_CHECK_MSG(target_pe >= 0 && target_pe < world_.npes_,
                 "bad target PE " << target_pe);
  ctx_.engine().verify().OnShmemAccess(pe_, target_pe, offset, bytes,
                                       /*write=*/true, /*atomic=*/false,
                                       ctx_.now());
  const auto times = world_.fabric_->RdmaWrite(
      ctx_.node(), world_.NodeOfPe(target_pe), bytes, ctx_.now());
  ctx_.Compute(times.sender_cpu);
  // The store becomes visible in the target heap now; programs observe it
  // through wait_until/barrier, which respect the arrival timestamp.
  std::memcpy(HeapAt(target_pe, offset), src, bytes);
  last_put_completion_ = std::max(last_put_completion_, times.arrival);
  const sim::Pid waiter = world_.waiters_[static_cast<std::size_t>(target_pe)];
  if (waiter != sim::kNoPid) {
    ctx_.engine().Wake(waiter, times.arrival);
  }
  // Local completion: source buffer reusable once the NIC has the data.
  ctx_.SleepUntil(times.sender_nic_done);
}

void Pe::RawGet(void* dest, Bytes offset, Bytes bytes, int target_pe) {
  PSTK_CHECK_MSG(target_pe >= 0 && target_pe < world_.npes_,
                 "bad target PE " << target_pe);
  ctx_.engine().verify().OnShmemAccess(pe_, target_pe, offset, bytes,
                                       /*write=*/false, /*atomic=*/false,
                                       ctx_.now());
  const auto times = world_.fabric_->RdmaRead(
      ctx_.node(), world_.NodeOfPe(target_pe), bytes, ctx_.now());
  ctx_.Compute(times.sender_cpu);
  std::memcpy(dest, HeapAt(target_pe, offset), bytes);
  ctx_.SleepUntil(times.arrival);  // gets are blocking
}

void Pe::Quiet() { ctx_.SleepUntil(last_put_completion_); }

std::int64_t Pe::AtomicFetchAdd(SymPtr<std::int64_t> target,
                                std::int64_t value, int target_pe) {
  ctx_.engine().verify().OnShmemAccess(pe_, target_pe, target.offset,
                                       sizeof(std::int64_t), /*write=*/true,
                                       /*atomic=*/true, ctx_.now());
  const auto times = world_.fabric_->RdmaRead(
      ctx_.node(), world_.NodeOfPe(target_pe), sizeof(std::int64_t),
      ctx_.now());
  ctx_.Compute(times.sender_cpu);
  auto* slot = reinterpret_cast<std::int64_t*>(
      HeapAt(target_pe, target.offset));
  const std::int64_t old = *slot;
  *slot = old + value;
  const sim::Pid waiter = world_.waiters_[static_cast<std::size_t>(target_pe)];
  if (waiter != sim::kNoPid) ctx_.engine().Wake(waiter, times.arrival);
  ctx_.SleepUntil(times.arrival);
  return old;
}

std::int64_t Pe::AtomicCompareSwap(SymPtr<std::int64_t> target,
                                   std::int64_t expected, std::int64_t desired,
                                   int target_pe) {
  ctx_.engine().verify().OnShmemAccess(pe_, target_pe, target.offset,
                                       sizeof(std::int64_t), /*write=*/true,
                                       /*atomic=*/true, ctx_.now());
  const auto times = world_.fabric_->RdmaRead(
      ctx_.node(), world_.NodeOfPe(target_pe), sizeof(std::int64_t),
      ctx_.now());
  ctx_.Compute(times.sender_cpu);
  auto* slot = reinterpret_cast<std::int64_t*>(
      HeapAt(target_pe, target.offset));
  const std::int64_t old = *slot;
  if (old == expected) *slot = desired;
  const sim::Pid waiter = world_.waiters_[static_cast<std::size_t>(target_pe)];
  if (waiter != sim::kNoPid) ctx_.engine().Wake(waiter, times.arrival);
  ctx_.SleepUntil(times.arrival);
  return old;
}

void Pe::WaitUntil(SymPtr<std::int64_t> ivar, Cmp cmp, std::int64_t value) {
  auto& waiter_slot = world_.waiters_[static_cast<std::size_t>(pe_)];
  PSTK_CHECK_MSG(waiter_slot == sim::kNoPid,
                 "PE " << pe_ << " already has a parked wait_until");
  for (;;) {
    const std::int64_t current = *Local(ivar);
    if (Compare(current, cmp, value)) {
      // Point-to-point synchronization: the waiter now happens-after every
      // write to the watched ivar.
      ctx_.engine().verify().OnShmemWaitSatisfied(pe_, ivar.offset,
                                                  ctx_.now());
      return;
    }
    waiter_slot = ctx_.pid();
    ctx_.Block("shmem wait_until");
    waiter_slot = sim::kNoPid;
  }
}

void Pe::BarrierAll() {
  Quiet();  // barrier implies completion of outstanding puts
  ctx_.engine().verify().OnShmemBarrier(pe_, world_.npes_, ctx_.now());
  const int tag =
      kCollTagBase | ((static_cast<int>(coll_seq_) & 0xFFF) << 12);
  ++coll_seq_;
  const std::uint8_t token = 1;
  for (int dist = 1, k = 0; dist < world_.npes_; dist <<= 1, ++k) {
    const int to = (pe_ + dist) % world_.npes_;
    const int from = (pe_ - dist + world_.npes_) % world_.npes_;
    endpoint().SendAsync(ctx_, to, tag + k, serde::Buffer{token});
    (void)endpoint().Recv(ctx_, from, tag + k);
  }
}

void Pe::RawBroadcast(Bytes offset, Bytes bytes, int root) {
  const int tag =
      kCollTagBase | 0x800000 | ((static_cast<int>(coll_seq_) & 0xFFF) << 8);
  ++coll_seq_;
  const int n = world_.npes_;
  const int relative = (pe_ - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = (relative - mask + root) % n;
      net::Message m = endpoint().Recv(ctx_, src, tag);
      PSTK_CHECK(m.payload.size() == bytes);
      std::memcpy(HeapAt(pe_, offset), m.payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (relative + mask + root) % n;
      const std::uint8_t* data = HeapAt(pe_, offset);
      endpoint().SendAsync(ctx_, dst, tag, serde::Buffer(data, data + bytes));
    }
    mask >>= 1;
  }
}

template <typename T>
void Pe::SumToAllImpl(Bytes dest_off, Bytes src_off, std::size_t count) {
  const int tag =
      kCollTagBase | 0x400000 | ((static_cast<int>(coll_seq_) & 0xFFF) << 8);
  ++coll_seq_;
  const Bytes bytes = count * sizeof(T);
  const int n = world_.npes_;

  if (pe_ == 0) {
    auto* dest = reinterpret_cast<T*>(HeapAt(pe_, dest_off));
    std::memcpy(dest, HeapAt(pe_, src_off), bytes);
    for (int from = 1; from < n; ++from) {
      net::Message m = endpoint().Recv(ctx_, net::kAnySource, tag);
      const T* incoming = reinterpret_cast<const T*>(m.payload.data());
      for (std::size_t i = 0; i < count; ++i) dest[i] += incoming[i];
    }
    ctx_.Compute(world_.cluster_.ComputeTime(
        static_cast<double>(count) * static_cast<double>(n - 1), 1));
    const auto* out = reinterpret_cast<const std::uint8_t*>(dest);
    for (int to = 1; to < n; ++to) {
      endpoint().SendAsync(ctx_, to, tag + 1,
                           serde::Buffer(out, out + bytes));
    }
  } else {
    const std::uint8_t* src = HeapAt(pe_, src_off);
    endpoint().SendAsync(ctx_, 0, tag, serde::Buffer(src, src + bytes));
    net::Message m = endpoint().Recv(ctx_, 0, tag + 1);
    std::memcpy(HeapAt(pe_, dest_off), m.payload.data(), bytes);
  }
}

void Pe::SumToAll(SymPtr<std::int64_t> dest, SymPtr<std::int64_t> source,
                  std::size_t count) {
  SumToAllImpl<std::int64_t>(dest.offset, source.offset, count);
}

void Pe::SumToAll(SymPtr<double> dest, SymPtr<double> source,
                  std::size_t count) {
  SumToAllImpl<double>(dest.offset, source.offset, count);
}

}  // namespace pstk::shmem
