// MiniSHMEM: an OpenSHMEM-like PGAS runtime on the simulated cluster.
//
// The survey's characterization (§II-C): SPMD launch of a fixed set of PEs,
// a symmetric heap addressable from every PE, one-sided put/get that map to
// RDMA (target CPU uninvolved), remote atomics, point-to-point
// synchronization via wait_until, and collectives. MiniSHMEM is
// "particularly advantageous for applications with many small put/get
// operations and/or irregular communication" — the ablation benchmark
// (bench/ablation_shmem) measures exactly that against MiniMPI two-sided.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"
#include "net/network.h"
#include "sim/engine.h"

namespace pstk::shmem {

struct ShmemOptions {
  SimTime startup_cost = Millis(600);
  /// SHMEM exists to exploit RDMA; override only in tests.
  std::optional<net::TransportParams> transport;
  /// Explicit PE->node placement (size must equal npes); empty means
  /// block placement from node 0. Set by pstk::sched for gang launches.
  std::vector<int> placement;
  /// Prefix for spawned process names.
  std::string name = "shmem";
};

/// Typed offset into the symmetric heap; valid on every PE.
template <typename T>
struct SymPtr {
  Bytes offset = 0;
  std::size_t count = 0;
  [[nodiscard]] SymPtr<T> at(std::size_t index) const {
    return SymPtr<T>{offset + index * sizeof(T), count - index};
  }
};

enum class Cmp { kEq, kNe, kGt, kGe, kLt, kLe };

class ShmemWorld;

/// One processing element's handle (the `shmem_*` API surface).
class Pe {
 public:
  [[nodiscard]] int my_pe() const { return pe_; }
  [[nodiscard]] int n_pes() const;
  [[nodiscard]] sim::Context& ctx() { return ctx_; }

  /// Symmetric allocation (collective: every PE must allocate in the same
  /// order with the same size — checked).
  template <typename T>
  SymPtr<T> Malloc(std::size_t count) {
    const Bytes offset = SymMalloc(count * sizeof(T), alignof(T));
    return SymPtr<T>{offset, count};
  }

  /// Local address of symmetric data on *this* PE.
  template <typename T>
  T* Local(SymPtr<T> ptr) {
    return reinterpret_cast<T*>(HeapAt(pe_, ptr.offset));
  }

  // --- one-sided RMA -------------------------------------------------------

  /// Non-blocking put: returns after local completion; remote delivery is
  /// complete after Quiet()/BarrierAll().
  template <typename T>
  void Put(SymPtr<T> dest, std::span<const T> src, int target_pe) {
    RawPut(dest.offset, src.data(), src.size_bytes(), target_pe);
  }
  template <typename T>
  void PutValue(SymPtr<T> dest, const T& value, int target_pe) {
    RawPut(dest.offset, &value, sizeof(T), target_pe);
  }

  /// Blocking get: returns when data is locally available.
  template <typename T>
  void Get(std::span<T> dest, SymPtr<T> src, int target_pe) {
    RawGet(dest.data(), src.offset, dest.size_bytes(), target_pe);
  }
  template <typename T>
  T GetValue(SymPtr<T> src, int target_pe) {
    T value;
    RawGet(&value, src.offset, sizeof(T), target_pe);
    return value;
  }

  /// Complete all outstanding puts from this PE (shmem_quiet).
  void Quiet();
  /// Order puts to each PE (modeled identically to Quiet here).
  void Fence() { Quiet(); }

  // --- remote atomics (NIC-executed, blocking fetch) ------------------------

  std::int64_t AtomicFetchAdd(SymPtr<std::int64_t> target, std::int64_t value,
                              int target_pe);
  std::int64_t AtomicCompareSwap(SymPtr<std::int64_t> target,
                                 std::int64_t expected, std::int64_t desired,
                                 int target_pe);

  // --- point-to-point synchronization ---------------------------------------

  /// Block until the local symmetric variable satisfies the comparison
  /// (shmem_wait_until). Remote puts/atomics to this PE wake the wait.
  void WaitUntil(SymPtr<std::int64_t> ivar, Cmp cmp, std::int64_t value);

  // --- collectives -----------------------------------------------------------

  void BarrierAll();
  /// Broadcast `count` elements of symmetric data from root to all PEs.
  template <typename T>
  void BroadcastAll(SymPtr<T> data, int root) {
    RawBroadcast(data.offset, data.count * sizeof(T), root);
  }
  /// Element-wise sum reduction over all PEs into `dest` on every PE.
  void SumToAll(SymPtr<std::int64_t> dest, SymPtr<std::int64_t> source,
                std::size_t count);
  void SumToAll(SymPtr<double> dest, SymPtr<double> source,
                std::size_t count);

 private:
  friend class ShmemWorld;
  Pe(ShmemWorld& world, sim::Context& ctx, int pe)
      : world_(world), ctx_(ctx), pe_(pe) {}

  Bytes SymMalloc(Bytes bytes, Bytes align);
  std::uint8_t* HeapAt(int pe, Bytes offset);
  void RawPut(Bytes offset, const void* src, Bytes bytes, int target_pe);
  void RawGet(void* dest, Bytes offset, Bytes bytes, int target_pe);
  void RawBroadcast(Bytes offset, Bytes bytes, int root);
  template <typename T>
  void SumToAllImpl(Bytes dest_off, Bytes src_off, std::size_t count);
  net::Endpoint& endpoint();

  ShmemWorld& world_;
  sim::Context& ctx_;
  int pe_;
  SimTime last_put_completion_ = 0;
  std::uint32_t coll_seq_ = 0;
};

/// The SHMEM job: symmetric heap owner and SPMD launcher.
class ShmemWorld {
 public:
  using PeBody = std::function<void(Pe&)>;

  ShmemWorld(cluster::Cluster& cluster, int npes, int pes_per_node,
             ShmemOptions options = {});

  void SpawnPes(PeBody body);
  /// Spawn + run; returns job makespan or failure.
  Result<SimTime> RunSpmd(PeBody body);

  /// Fires once, when the last PE leaves shmem_finalize (for mid-run
  /// launchers that cannot wait for the engine to drain).
  void OnAllPesDone(std::function<void(SimTime)> callback) {
    on_done_ = std::move(callback);
  }

  [[nodiscard]] int npes() const { return npes_; }
  [[nodiscard]] int NodeOfPe(int pe) const {
    if (!options_.placement.empty()) return options_.placement[pe];
    return pe / pes_per_node_;
  }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  /// Virtual time the last PE exited (valid after the engine ran); lets
  /// callers that drive the engine directly (ckpt::RestartManager) read
  /// the job makespan without RunSpmd.
  [[nodiscard]] SimTime job_end_time() const { return job_end_; }

 private:
  friend class Pe;

  struct Allocation {
    Bytes offset;
    Bytes bytes;
  };

  cluster::Cluster& cluster_;
  ShmemOptions options_;
  int npes_;
  int pes_per_node_;
  std::shared_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Network> network_;

  std::vector<std::vector<std::uint8_t>> heaps_;  // one per PE
  std::vector<Allocation> layout_;  // symmetric allocation sequence
  std::vector<std::size_t> alloc_cursor_;  // per PE: next layout slot
  Bytes heap_top_ = 0;

  // wait_until support: the parked waiter per PE, if any.
  std::vector<sim::Pid> waiters_;

  SimTime job_end_ = 0;
  int pes_done_ = 0;
  std::function<void(SimTime)> on_done_;
};

}  // namespace pstk::shmem
