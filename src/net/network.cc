#include "net/network.h"

#include <algorithm>
#include <limits>

namespace pstk::net {

namespace {
constexpr std::size_t kNoMatch = std::numeric_limits<std::size_t>::max();
}

Network::Network(sim::Engine& engine, std::shared_ptr<Fabric> fabric,
                 Bytes eager_threshold)
    : engine_(engine),
      fabric_(std::move(fabric)),
      eager_threshold_(eager_threshold) {
  PSTK_CHECK(fabric_ != nullptr);
  obs::Registry& reg = engine_.obs();
  tag_eager_ = reg.Intern("net.sends.eager");
  tag_rendezvous_ = reg.Intern("net.sends.rendezvous");
  tag_async_ = reg.Intern("net.sends.async");
}

Endpoint& Network::CreateEndpoint(int id, int node) {
  PSTK_CHECK_MSG(id >= 0, "endpoint id must be >= 0");
  if (endpoints_.size() <= static_cast<std::size_t>(id)) {
    endpoints_.resize(id + 1);
  }
  PSTK_CHECK_MSG(endpoints_[id] == nullptr, "duplicate endpoint id " << id);
  endpoints_[id] = std::unique_ptr<Endpoint>(new Endpoint(*this, id, node));
  return *endpoints_[id];
}

Endpoint& Network::endpoint(int id) {
  PSTK_CHECK_MSG(HasEndpoint(id), "no endpoint " << id);
  return *endpoints_[id];
}

bool Network::HasEndpoint(int id) const {
  return id >= 0 && static_cast<std::size_t>(id) < endpoints_.size() &&
         endpoints_[id] != nullptr;
}

std::vector<Endpoint::PendingInfo> Endpoint::Pending() const {
  std::vector<PendingInfo> pending;
  pending.reserve(inbox_.size());
  for (const Message& m : inbox_) {
    pending.push_back(PendingInfo{m.src, m.tag, m.size});
  }
  return pending;
}

void Endpoint::Send(sim::Context& ctx, int dst, int tag, buf::Bytes payload,
                    Bytes modeled_size) {
  if (modeled_size == 0) modeled_size = payload.size();
  user_pid_ = ctx.pid();
  Endpoint& target = network_.endpoint(dst);

  const TransferTimes times = network_.fabric().Transfer(
      node_, target.node_, modeled_size, ctx.now());
  ctx.Compute(times.sender_cpu);

  Message message;
  message.src = id_;
  message.tag = tag;
  message.seq = network_.seq_++;
  message.size = modeled_size;
  message.payload = std::move(payload);
  message.arrival = times.arrival;

  const bool rendezvous = modeled_size > network_.eager_threshold();
  ctx.engine().obs().Add(rendezvous ? network_.tag_rendezvous_
                                    : network_.tag_eager_);
  if (rendezvous) {
    message.sender_pid = ctx.pid();
    message.wants_completion_wake = true;
  }
  target.Deposit(std::move(message));

  if (rendezvous) {
    // Synchronous semantics for large messages: wait until consumed.
    // The receiver owning the destination endpoint must drain it; the
    // owner is resolved lazily so a receiver that binds after we park
    // still shows up in deadlock wait-for edges.
    ctx.BlockOn("send-rendezvous to ep " + std::to_string(dst),
                [&target]() { return target.user_pid_; });
  } else {
    // Eager: the sender is done once its NIC has pushed the bytes.
    ctx.SleepUntil(times.sender_nic_done);
  }
}

void Endpoint::SendAsync(sim::Context& ctx, int dst, int tag,
                         buf::Bytes payload, Bytes modeled_size) {
  if (modeled_size == 0) modeled_size = payload.size();
  user_pid_ = ctx.pid();
  ctx.engine().obs().Add(network_.tag_async_);
  Endpoint& target = network_.endpoint(dst);

  const TransferTimes times = network_.fabric().Transfer(
      node_, target.node_, modeled_size, ctx.now());
  ctx.Compute(times.sender_cpu);

  Message message;
  message.src = id_;
  message.tag = tag;
  message.seq = network_.seq_++;
  message.size = modeled_size;
  message.payload = std::move(payload);
  message.arrival = times.arrival;
  target.Deposit(std::move(message));
}

void Endpoint::Deposit(Message message) {
  const SimTime arrival = message.arrival;
  inbox_.push_back(std::move(message));
  if (waiter_ != sim::kNoPid) {
    network_.engine_.Wake(waiter_, arrival);
  }
}

std::size_t Endpoint::FindMatch(int src, int tag) const {
  // Earliest-arrival matching message; seq breaks ties (FIFO per pair).
  std::size_t best = kNoMatch;
  for (std::size_t i = 0; i < inbox_.size(); ++i) {
    const Message& m = inbox_[i];
    if (src != kAnySource && m.src != src) continue;
    if (tag != kAnyTag && m.tag != tag) continue;
    if (best == kNoMatch || m.arrival < inbox_[best].arrival ||
        (m.arrival == inbox_[best].arrival && m.seq < inbox_[best].seq)) {
      best = i;
    }
  }
  return best;
}

void Endpoint::Reap() {
  if (waiter_ != sim::kNoPid && !network_.engine_.IsAlive(waiter_)) {
    waiter_ = sim::kNoPid;
  }
  if (user_pid_ != sim::kNoPid && !network_.engine_.IsAlive(user_pid_)) {
    user_pid_ = sim::kNoPid;
  }
}

Message Endpoint::Recv(sim::Context& ctx, int src, int tag) {
  PSTK_CHECK_MSG(waiter_ == sim::kNoPid,
                 "endpoint " << id_ << " already has a receiver parked");
  user_pid_ = ctx.pid();
  for (;;) {
    const std::size_t idx = FindMatch(src, tag);
    if (idx != kNoMatch) {
      const SimTime arrival = inbox_[idx].arrival;
      if (arrival <= ctx.now()) {
        Message message = std::move(inbox_[idx]);
        inbox_.erase(inbox_.begin() + static_cast<std::ptrdiff_t>(idx));
        // Receiver pays its protocol stack cost on consumption.
        const TransportParams& tp = network_.fabric().default_transport();
        ctx.Compute(tp.per_message_cpu +
                    static_cast<double>(message.size) * tp.per_byte_cpu);
        if (message.wants_completion_wake &&
            message.sender_pid != sim::kNoPid) {
          network_.engine_.Wake(message.sender_pid, ctx.now());
        }
        return message;
      }
      // A matching message exists but hasn't arrived in our virtual time
      // yet: sleep until its arrival, wakeable earlier by new deposits.
      waiter_ = ctx.pid();
      ctx.BlockUntil(arrival, "recv (msg in flight)");
      waiter_ = sim::kNoPid;
    } else {
      waiter_ = ctx.pid();
      // The expected sender (when named) owns the wait-for edge; wildcard
      // receives have no single owner. Resolution is lazy: a peer that
      // binds its endpoint after we park is still a valid edge target.
      Network* net = &network_;
      ctx.BlockOn("recv src=" + std::to_string(src) +
                      " tag=" + std::to_string(tag),
                  [net, src]() {
                    return src != kAnySource && net->HasEndpoint(src)
                               ? net->endpoint(src).user_pid_
                               : sim::kNoPid;
                  });
      waiter_ = sim::kNoPid;
    }
  }
}

std::optional<Message> Endpoint::RecvWithTimeout(sim::Context& ctx,
                                                 SimTime deadline, int src,
                                                 int tag) {
  PSTK_CHECK_MSG(waiter_ == sim::kNoPid,
                 "endpoint " << id_ << " already has a receiver parked");
  user_pid_ = ctx.pid();
  for (;;) {
    if (auto message = TryRecv(ctx, src, tag)) return message;
    if (ctx.now() >= deadline) return std::nullopt;
    const std::size_t idx = FindMatch(src, tag);
    const SimTime until = idx == kNoMatch
                              ? deadline
                              : std::min(deadline, inbox_[idx].arrival);
    waiter_ = ctx.pid();
    ctx.BlockUntil(until, "recv-timeout");
    waiter_ = sim::kNoPid;
  }
}

std::optional<Message> Endpoint::TryRecv(sim::Context& ctx, int src, int tag) {
  user_pid_ = ctx.pid();
  const std::size_t idx = FindMatch(src, tag);
  if (idx == kNoMatch || inbox_[idx].arrival > ctx.now()) return std::nullopt;
  Message message = std::move(inbox_[idx]);
  inbox_.erase(inbox_.begin() + static_cast<std::ptrdiff_t>(idx));
  const TransportParams& tp = network_.fabric().default_transport();
  ctx.Compute(tp.per_message_cpu +
              static_cast<double>(message.size) * tp.per_byte_cpu);
  if (message.wants_completion_wake && message.sender_pid != sim::kNoPid) {
    network_.engine_.Wake(message.sender_pid, ctx.now());
  }
  return message;
}

bool Endpoint::Probe(sim::Context& ctx, int src, int tag) const {
  const std::size_t idx = FindMatch(src, tag);
  return idx != kNoMatch && inbox_[idx].arrival <= ctx.now();
}

}  // namespace pstk::net
