// Interconnect cost models.
//
// A Fabric owns the per-node NIC timelines of a cluster. Messages can be
// sent over different *transports* (protocol stacks) that share those NICs:
// Comet exposes the same FDR InfiniBand port as native verbs (RDMA), TCP
// over IPoIB, and the software stacks also support plain 10 GbE. The
// transport determines latency, effective bandwidth, and — crucially for
// the paper's Spark-vs-MPI story — the per-message/per-byte *CPU* cost of
// the protocol stack (high for sockets, near-zero for RDMA offload).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/obs.h"
#include "sim/timeline.h"

namespace pstk::net {

struct TransportParams {
  std::string name;
  SimTime base_latency = Micros(50);  // one-way wire+stack latency
  Rate bandwidth = Gbps(10);          // effective point-to-point bandwidth
  SimTime per_message_cpu = Micros(20);  // sender/receiver syscall+interrupt
  SimTime per_byte_cpu = 0;           // protocol copies (TCP) per byte
  bool rdma = false;                  // supports one-sided, target CPU idle

  /// Conventional 10 GbE with kernel TCP (Hadoop/Spark default transport).
  static TransportParams Ethernet10G();
  /// TCP over FDR InfiniBand: IB bandwidth, but socket stack costs remain.
  static TransportParams IPoIB();
  /// Native FDR InfiniBand verbs: 56 Gbit/s, ~1.5 us latency, HW offload.
  static TransportParams RdmaFdr();
  /// Intra-node shared memory (used automatically when src == dst).
  static TransportParams SharedMemory();
};

/// Completion times of one transfer, all in virtual seconds.
struct TransferTimes {
  SimTime sender_nic_done;   // sender's NIC finished pushing bytes
  SimTime arrival;           // last byte available at the receiver
  SimTime sender_cpu = 0;    // CPU seconds the *sender* must charge
  SimTime receiver_cpu = 0;  // CPU seconds the *receiver* must charge
};

/// Per-node NIC occupancy plus transport cost arithmetic.
class Fabric {
 public:
  Fabric(std::size_t nodes, TransportParams default_transport);

  /// Compute (and reserve NIC time for) a transfer of `bytes` from
  /// `src_node` to `dst_node`, with the sender ready at `t`.
  TransferTimes Transfer(int src_node, int dst_node, Bytes bytes, SimTime t);
  TransferTimes Transfer(const TransportParams& transport, int src_node,
                         int dst_node, Bytes bytes, SimTime t);

  /// One-sided RDMA write/get: no receiver CPU, no receiver process needed.
  /// Falls back to two-sided costs when the transport lacks RDMA.
  TransferTimes RdmaWrite(int src_node, int dst_node, Bytes bytes, SimTime t);
  TransferTimes RdmaRead(int src_node, int dst_node, Bytes bytes, SimTime t);

  [[nodiscard]] const TransportParams& default_transport() const {
    return default_;
  }
  [[nodiscard]] std::size_t nodes() const { return tx_.size(); }

  /// Minimum virtual-time separation any interaction between `node_a` and
  /// `node_b` can achieve on this fabric: the transport's base (zero-byte)
  /// one-way latency — shared memory when the nodes coincide, the default
  /// transport's wire+stack latency otherwise. This is the quantity a
  /// sharded simulation may use as conservative lookahead: no message
  /// modeled through this fabric arrives earlier.
  [[nodiscard]] SimTime MinLatency(int node_a, int node_b) const;

  /// NIC utilization introspection (for reports and tests).
  [[nodiscard]] SimTime tx_busy(int node) const { return tx_[node].busy_time(); }
  [[nodiscard]] SimTime rx_busy(int node) const { return rx_[node].busy_time(); }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] Bytes bytes_sent() const { return bytes_; }

  /// Publish per-transfer metrics (message/byte counters, message-size and
  /// sender-CPU histograms, scoped `net.<transport>.*`) into `registry`.
  /// Optional: a detached fabric (nullptr) just skips publication.
  void AttachObs(obs::Registry* registry);

 private:
  TransportParams default_;
  std::vector<sim::Timeline> tx_;
  std::vector<sim::Timeline> rx_;
  std::uint64_t messages_ = 0;
  Bytes bytes_ = 0;

  obs::Registry* obs_ = nullptr;
  obs::TagId tag_messages_ = obs::kNoTag;
  obs::TagId tag_bytes_ = obs::kNoTag;
  obs::TagId tag_msg_size_ = obs::kNoTag;
  obs::TagId tag_sender_cpu_ = obs::kNoTag;
};

/// Build a sim::ShardOptions-compatible lookahead function from the
/// fabric: L(src_shard, dst_shard) = min over node pairs (a on src, b on
/// dst) of fabric.MinLatency(a, b), where `shard_of_node` is the same
/// placement the engine uses. Every cross-shard interaction modeled
/// through `fabric` then satisfies the sharded engine's lookahead promise
/// by construction. O(nodes^2) once at Run() start.
[[nodiscard]] std::function<SimTime(int, int)> ShardLookahead(
    const Fabric& fabric, const std::function<int(int)>& shard_of_node,
    int shards);

}  // namespace pstk::net
