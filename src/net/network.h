// Message transport over a Fabric: endpoints with (source, tag) matching,
// eager/rendezvous protocols, and virtual-time-correct blocking receive.
//
// This is the substrate both MiniMPI (ranks) and MiniSpark/MiniMR
// (driver/executor RPC) are built on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "buf/bytes.h"
#include "common/check.h"
#include "common/units.h"
#include "net/fabric.h"
#include "serde/serde.h"
#include "sim/engine.h"

namespace pstk::net {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int src = 0;           // sending endpoint id
  int tag = 0;
  std::uint64_t seq = 0; // global send order (FIFO tie-break)
  Bytes size = 0;        // modeled size (cost model), >= payload.size()
  buf::Bytes payload;    // actual data — refcounted, shared with the sender
  SimTime arrival = 0;   // virtual time the last byte is available
  sim::Pid sender_pid = sim::kNoPid;  // set when the sender blocks (rendezvous)
  bool wants_completion_wake = false;
};

class Network;

/// One communication endpoint (an MPI rank, a Spark executor, ...). An
/// endpoint is used by exactly one simulated process at a time.
class Endpoint {
 public:
  /// Two-sided send. For modeled sizes <= eager threshold the sender only
  /// pays CPU + NIC occupancy and continues; larger messages use a
  /// rendezvous: the sender blocks until the receiver consumes the message.
  /// `modeled_size` defaults to the payload size. Transfer cost is charged
  /// on the modeled bytes; the simulator only passes a refcount.
  void Send(sim::Context& ctx, int dst, int tag, buf::Bytes payload,
            Bytes modeled_size = 0);
  void Send(sim::Context& ctx, int dst, int tag, serde::Buffer payload,
            Bytes modeled_size = 0) {
    Send(ctx, dst, tag, buf::Bytes::FromVector(std::move(payload)),
         modeled_size);
  }

  /// Fire-and-forget send (never blocks past NIC occupancy), regardless of
  /// size; used for nonblocking MPI sends and RPC-style control messages.
  void SendAsync(sim::Context& ctx, int dst, int tag, buf::Bytes payload,
                 Bytes modeled_size = 0);
  void SendAsync(sim::Context& ctx, int dst, int tag, serde::Buffer payload,
                 Bytes modeled_size = 0) {
    SendAsync(ctx, dst, tag, buf::Bytes::FromVector(std::move(payload)),
              modeled_size);
  }

  /// Blocking receive with matching; kAnySource / kAnyTag wildcard.
  Message Recv(sim::Context& ctx, int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe: returns a matching message if one has fully
  /// arrived by the caller's current clock.
  std::optional<Message> TryRecv(sim::Context& ctx, int src = kAnySource,
                                 int tag = kAnyTag);

  /// Blocking receive that gives up at virtual time `deadline` (used by
  /// coordinators that must detect dead peers).
  std::optional<Message> RecvWithTimeout(sim::Context& ctx, SimTime deadline,
                                         int src = kAnySource,
                                         int tag = kAnyTag);

  /// True if a matching message has arrived by the caller's clock.
  [[nodiscard]] bool Probe(sim::Context& ctx, int src = kAnySource,
                           int tag = kAnyTag) const;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] std::size_t inbox_size() const { return inbox_.size(); }

  /// (src, tag, modeled size) of every message still in the inbox — used
  /// by the verify layer to flag unmatched sends when the owner exits.
  struct PendingInfo {
    int src;
    int tag;
    Bytes bytes;
  };
  [[nodiscard]] std::vector<PendingInfo> Pending() const;

  /// The process last seen using this endpoint (deadlock holder edges).
  [[nodiscard]] sim::Pid user_pid() const { return user_pid_; }

  /// Register the calling process as this endpoint's owner (runtimes call
  /// this at init so wait-for edges resolve even before any traffic).
  void Bind(sim::Context& ctx) { user_pid_ = ctx.pid(); }

  /// Clear the parked-receiver marker a killed owner left behind
  /// (ProcessKilled unwinds past Recv's reset). Runtimes that hand a dead
  /// process's endpoint to a replacement (Spark executor reacquisition)
  /// must call this before the replacement receives.
  void Reap();

 private:
  friend class Network;
  Endpoint(Network& network, int id, int node)
      : network_(network), id_(id), node_(node) {}

  void Deposit(Message message);
  [[nodiscard]] std::size_t FindMatch(int src, int tag) const;

  Network& network_;
  int id_;
  int node_;
  std::deque<Message> inbox_;
  sim::Pid waiter_ = sim::kNoPid;  // process parked in Recv, if any
  sim::Pid user_pid_ = sim::kNoPid;  // last process to use this endpoint
};

/// Factory/owner of endpoints over one Fabric.
class Network {
 public:
  /// `eager_threshold`: messages with modeled size above it rendezvous.
  Network(sim::Engine& engine, std::shared_ptr<Fabric> fabric,
          Bytes eager_threshold = 64 * kKiB);

  /// Create endpoint with the given id (must be unique) living on `node`.
  Endpoint& CreateEndpoint(int id, int node);
  [[nodiscard]] Endpoint& endpoint(int id);
  [[nodiscard]] bool HasEndpoint(int id) const;

  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] Bytes eager_threshold() const { return eager_threshold_; }

 private:
  friend class Endpoint;

  sim::Engine& engine_;
  std::shared_ptr<Fabric> fabric_;
  Bytes eager_threshold_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  // indexed by id
  std::uint64_t seq_ = 0;

  // Send-protocol counters, published on the engine's obs bus.
  obs::TagId tag_eager_ = obs::kNoTag;
  obs::TagId tag_rendezvous_ = obs::kNoTag;
  obs::TagId tag_async_ = obs::kNoTag;
};

}  // namespace pstk::net
