#include "net/fabric.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace pstk::net {

TransportParams TransportParams::Ethernet10G() {
  TransportParams p;
  p.name = "ethernet-10g";
  p.base_latency = Micros(50);
  p.bandwidth = Gbps(9.4);          // TCP goodput on 10 GbE
  p.per_message_cpu = Micros(25);   // syscalls, interrupts, kernel path
  p.per_byte_cpu = 1.0 / GBps(4);   // one memcpy through the socket stack
  p.rdma = false;
  return p;
}

TransportParams TransportParams::IPoIB() {
  TransportParams p;
  p.name = "ipoib";
  p.base_latency = Micros(20);
  // FDR is 56 Gbit/s raw, but TCP over IPoIB historically achieves a
  // fraction of it (kernel bound); ~22 Gbit/s goodput.
  p.bandwidth = Gbps(22);
  p.per_message_cpu = Micros(20);
  p.per_byte_cpu = 1.0 / GBps(4);
  p.rdma = false;
  return p;
}

TransportParams TransportParams::RdmaFdr() {
  TransportParams p;
  p.name = "rdma-fdr";
  p.base_latency = Micros(1.5);
  p.bandwidth = Gbps(54);           // FDR 56 Gbit/s minus encoding overhead
  p.per_message_cpu = Micros(0.3);  // doorbell write; NIC does the rest
  p.per_byte_cpu = 0;               // zero-copy
  p.rdma = true;
  return p;
}

TransportParams TransportParams::SharedMemory() {
  TransportParams p;
  p.name = "shm";
  p.base_latency = Micros(0.4);
  p.bandwidth = GBps(8);            // cross-socket memcpy
  p.per_message_cpu = Micros(0.2);
  p.per_byte_cpu = 0;
  p.rdma = true;                    // loads/stores are one-sided
  return p;
}

Fabric::Fabric(std::size_t nodes, TransportParams default_transport)
    : default_(std::move(default_transport)), tx_(nodes), rx_(nodes) {
  PSTK_CHECK_MSG(nodes >= 1, "fabric needs at least one node");
}

SimTime Fabric::MinLatency(int node_a, int node_b) const {
  PSTK_CHECK_MSG(node_a >= 0 && node_a < static_cast<int>(tx_.size()),
                 "bad node " << node_a);
  PSTK_CHECK_MSG(node_b >= 0 && node_b < static_cast<int>(tx_.size()),
                 "bad node " << node_b);
  if (node_a == node_b) return TransportParams::SharedMemory().base_latency;
  return default_.base_latency;
}

std::function<SimTime(int, int)> ShardLookahead(
    const Fabric& fabric, const std::function<int(int)>& shard_of_node,
    int shards) {
  PSTK_CHECK_MSG(shards >= 1, "ShardLookahead needs shards >= 1");
  // Dense matrix precomputed once: the engine queries L(src, dst) for
  // every shard pair at Run() start, and a lambda capturing the fabric by
  // reference would dangle if the caller's fabric moves.
  const int nodes = static_cast<int>(fabric.nodes());
  std::vector<SimTime> matrix(
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards),
      std::numeric_limits<SimTime>::infinity());
  std::vector<int> shard_of(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    const int s = shard_of_node ? shard_of_node(n) : n % shards;
    PSTK_CHECK_MSG(s >= 0 && s < shards,
                   "shard_of_node(" << n << ") = " << s << " out of range");
    shard_of[static_cast<std::size_t>(n)] = s;
  }
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      const int sa = shard_of[static_cast<std::size_t>(a)];
      const int sb = shard_of[static_cast<std::size_t>(b)];
      if (sa == sb) continue;
      auto& slot = matrix[static_cast<std::size_t>(sa) * shards + sb];
      slot = std::min(slot, fabric.MinLatency(a, b));
    }
  }
  return [matrix = std::move(matrix), shards](int src, int dst) {
    PSTK_CHECK_MSG(src >= 0 && src < shards && dst >= 0 && dst < shards,
                   "ShardLookahead(" << src << ", " << dst
                                     << ") out of range for " << shards
                                     << " shards");
    return matrix[static_cast<std::size_t>(src) * shards + dst];
  };
}

void Fabric::AttachObs(obs::Registry* registry) {
  obs_ = registry;
  if (obs_ == nullptr) return;
  const std::string scope = "net." + default_.name;
  tag_messages_ = obs_->Intern(scope + ".messages");
  tag_bytes_ = obs_->Intern(scope + ".bytes");
  tag_msg_size_ = obs_->Intern(scope + ".msg_bytes");
  tag_sender_cpu_ = obs_->Intern(scope + ".sender_cpu");
}

TransferTimes Fabric::Transfer(int src_node, int dst_node, Bytes bytes,
                               SimTime t) {
  return Transfer(default_, src_node, dst_node, bytes, t);
}

TransferTimes Fabric::Transfer(const TransportParams& transport, int src_node,
                               int dst_node, Bytes bytes, SimTime t) {
  PSTK_CHECK_MSG(src_node >= 0 && src_node < static_cast<int>(tx_.size()),
                 "bad src node " << src_node);
  PSTK_CHECK_MSG(dst_node >= 0 && dst_node < static_cast<int>(rx_.size()),
                 "bad dst node " << dst_node);
  ++messages_;
  bytes_ += bytes;
  if (obs_ != nullptr) {
    obs_->Add(tag_messages_);
    obs_->Add(tag_bytes_, bytes);
    obs_->Observe(tag_msg_size_, static_cast<double>(bytes));
  }

  TransferTimes times;
  const auto fbytes = static_cast<double>(bytes);

  if (src_node == dst_node) {
    // Intra-node: shared-memory copy, no NIC involvement.
    const TransportParams shm = TransportParams::SharedMemory();
    const SimTime copy = fbytes / shm.bandwidth;
    times.sender_cpu = shm.per_message_cpu + copy;
    times.sender_nic_done = t + shm.base_latency + copy;
    times.arrival = times.sender_nic_done;
    times.receiver_cpu = shm.per_message_cpu;
    if (obs_ != nullptr) obs_->Observe(tag_sender_cpu_, times.sender_cpu);
    return times;
  }

  const SimTime wire = fbytes / transport.bandwidth;
  times.sender_cpu =
      transport.per_message_cpu + fbytes * transport.per_byte_cpu;
  times.receiver_cpu = times.sender_cpu;  // symmetric stack cost

  // The sender's NIC serializes outgoing bytes; the wire adds latency; the
  // receiver's NIC serializes incoming bytes. Contention appears as queueing
  // on either timeline.
  const SimTime tx_done = tx_[src_node].Acquire(t + times.sender_cpu, wire);
  times.sender_nic_done = tx_done;
  const SimTime rx_ready = tx_done + transport.base_latency;
  times.arrival = rx_[dst_node].Acquire(rx_ready - wire, wire);
  // rx Acquire starts no earlier than (first byte at receiver); if the rx
  // NIC is free the arrival equals tx_done + latency.
  times.arrival = std::max(times.arrival, rx_ready);
  if (obs_ != nullptr) obs_->Observe(tag_sender_cpu_, times.sender_cpu);
  return times;
}

TransferTimes Fabric::RdmaWrite(int src_node, int dst_node, Bytes bytes,
                                SimTime t) {
  if (!default_.rdma) {
    // Software emulation: a regular two-sided transfer.
    return Transfer(src_node, dst_node, bytes, t);
  }
  TransferTimes times = Transfer(default_, src_node, dst_node, bytes, t);
  times.receiver_cpu = 0;  // HW writes straight to registered memory
  return times;
}

TransferTimes Fabric::RdmaRead(int src_node, int dst_node, Bytes bytes,
                               SimTime t) {
  if (!default_.rdma) {
    TransferTimes times = Transfer(src_node, dst_node, bytes, t);
    times.arrival += default_.base_latency;  // extra request round-trip
    return times;
  }
  // One request packet out, data back; the request adds a round-trip hop.
  TransferTimes times =
      Transfer(default_, dst_node, src_node, bytes, t + default_.base_latency);
  times.receiver_cpu = 0;
  times.sender_cpu = default_.per_message_cpu;
  return times;
}

}  // namespace pstk::net
