#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "sim/fiber.h"

namespace pstk::sim {

namespace {
constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();
// Events scheduled from inside a parallel round get per-shard FIFO seqs
// above every pre-run seq; coordinator-routed deliveries sit above both.
constexpr std::uint64_t kMidRunSeqBase = std::uint64_t{1} << 40;
}  // namespace

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

std::string_view BackendName(Backend backend) {
  return backend == Backend::kThreads ? "threads" : "fibers";
}

std::optional<Backend> ParseBackendName(std::string_view name) {
  if (name == "fibers") return Backend::kFibers;
  if (name == "threads") return Backend::kThreads;
  return std::nullopt;
}

std::string_view ValidBackendNames() { return "fibers, threads"; }

namespace {
std::optional<Backend>& BackendOverride() {
  static std::optional<Backend> override_backend;
  return override_backend;
}

// Re-parsed on every call (it's one getenv + two string compares): a
// cached static would freeze the first observation, and a bad value must
// fail loudly no matter when the first Engine is constructed.
Backend EnvBackend() {
  const char* env = std::getenv("PSTK_SIM_BACKEND");
  if (env == nullptr || *env == '\0') return Backend::kFibers;
  const std::optional<Backend> parsed = ParseBackendName(env);
  PSTK_CHECK_MSG(parsed.has_value(),
                 "unknown PSTK_SIM_BACKEND '"
                     << env << "' (valid backends: " << ValidBackendNames()
                     << ")");
  return *parsed;
}
}  // namespace

Backend DefaultBackend() {
  const auto& override_backend = BackendOverride();
  return override_backend.has_value() ? *override_backend : EnvBackend();
}

void SetDefaultBackend(Backend backend) { BackendOverride() = backend; }

// ---------------------------------------------------------------------------
// ThreadBackend — the legacy one-OS-thread-per-process execution mechanism.
// Cooperative batons: `engine_turn_` gates the engine loop, each process
// thread has its own `proc_turn` flag. Every dispatch is one condvar wake
// plus one condvar wait on each side (two host context switches).
// ---------------------------------------------------------------------------

namespace {

struct ThreadExec final : ProcExec {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool proc_turn = false;  // true: process may run; false: engine's turn
  bool started = false;
};

class ThreadBackend final : public ExecBackend {
 public:
  ~ThreadBackend() override = default;

  void Resume(Engine& engine, Proc& p) override {
    auto& x = Exec(p);
    engine_turn_ = false;
    if (!x.started) {
      x.started = true;
      x.thread = std::thread([this, &engine, &p] { ThreadMain(engine, p); });
    }
    {
      std::lock_guard<std::mutex> lk(x.mu);
      x.proc_turn = true;
    }
    x.cv.notify_one();
    {
      std::unique_lock<std::mutex> lk(engine_mu_);
      engine_cv_.wait(lk, [&] { return engine_turn_; });
    }
  }

  void Suspend(Proc& p) override {
    auto& x = Exec(p);
    {
      std::lock_guard<std::mutex> lk(engine_mu_);
      engine_turn_ = true;
    }
    engine_cv_.notify_one();
    {
      std::unique_lock<std::mutex> lk(x.mu);
      x.cv.wait(lk, [&] { return x.proc_turn; });
      x.proc_turn = false;
    }
  }

  void Unwind(Engine& engine, Proc& p) override {
    auto* x = static_cast<ThreadExec*>(p.exec.get());
    if (x == nullptr || !x->started) {
      // Never ran: nothing to join; mark the corpse.
      if (p.state != ProcState::kDone) p.state = ProcState::kKilled;
      return;
    }
    if (p.state == ProcState::kBlocked || p.state == ProcState::kReady) {
      // Force the thread to unwind (kill_requested is set) so it can join.
      Resume(engine, p);
    }
    if (x->thread.joinable()) x->thread.join();
  }

 private:
  static ThreadExec& Exec(Proc& p) {
    if (p.exec == nullptr) p.exec = std::make_unique<ThreadExec>();
    return static_cast<ThreadExec&>(*p.exec);
  }

  void ThreadMain(Engine& engine, Proc& p) {
    // The process thread acts on behalf of its owning shard: bind the
    // thread-local shard slot so obs recording and cross-shard routing
    // see the right shard (shard 0 on an unsharded engine).
    engine.BindExecThread(p.shard);
    auto& x = static_cast<ThreadExec&>(*p.exec);
    // Wait for the first dispatch.
    {
      std::unique_lock<std::mutex> lk(x.mu);
      x.cv.wait(lk, [&] { return x.proc_turn; });
      x.proc_turn = false;
    }
    engine.ExecuteBody(p);
    // Hand the baton back to the engine for good.
    {
      std::lock_guard<std::mutex> lk(engine_mu_);
      engine_turn_ = true;
    }
    engine_cv_.notify_one();
  }

  std::mutex engine_mu_;
  std::condition_variable engine_cv_;
  bool engine_turn_ = true;
};

}  // namespace

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Pid Context::pid() const { return pid_; }

const std::string& Context::name() const {
  return engine_.procs_[pid_]->name;
}

int Context::node() const { return engine_.procs_[pid_]->node; }

SimTime Context::now() const { return engine_.procs_[pid_]->clock; }

Rng& Context::rng() { return engine_.procs_[pid_]->rng; }

void Context::Compute(SimTime seconds) {
  PSTK_CHECK_MSG(seconds >= 0, "negative compute time " << seconds);
  engine_.procs_[pid_]->clock += seconds;
}

void Context::SleepUntil(SimTime t) {
  // Loop: a stray Wake may resume us early; keep sleeping until t.
  while (engine_.procs_[pid_]->clock < t) {
    engine_.ProcBlockUntil(pid_, t, "sleep");
  }
}

void Context::Yield() {
  engine_.ProcBlockUntil(pid_, engine_.procs_[pid_]->clock, "yield");
}

SimTime Context::Block(std::string_view reason) {
  return engine_.ProcBlock(pid_, reason);
}

SimTime Context::BlockOn(std::string_view reason, Pid holder) {
  return engine_.ProcBlock(pid_, reason, holder);
}

SimTime Context::BlockOn(std::string_view reason, std::function<Pid()> holder) {
  return engine_.ProcBlock(pid_, reason, kNoPid, std::move(holder));
}

SimTime Context::BlockUntil(SimTime t, std::string_view reason) {
  return engine_.ProcBlockUntil(pid_, t, reason);
}

void Context::Trace(std::string_view tag, std::string_view detail) {
  obs::Registry& reg = engine_.obs_;
  if (!reg.enabled()) return;
  reg.Instant(node(), pid_, reg.Intern(tag), now(),
              detail.empty() ? obs::kNoTag : reg.Intern(detail),
              /*user=*/true);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

thread_local const Engine* Engine::tls_engine_ = nullptr;
thread_local int Engine::tls_shard_ = -1;

Engine::Engine(std::uint64_t seed, Backend backend)
    : Engine(seed, backend, ShardOptions{}) {}

Engine::Engine(std::uint64_t seed, Backend backend, ShardOptions shard_options)
    : seed_(seed), backend_(backend),
      shard_options_(std::move(shard_options)) {
  PSTK_CHECK_MSG(shard_options_.shards >= 1,
                 "ShardOptions.shards must be >= 1, got "
                     << shard_options_.shards);
  shards_.reserve(static_cast<std::size_t>(shard_options_.shards));
  for (int s = 0; s < shard_options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    if (backend_ == Backend::kThreads) {
      shard->exec = std::make_unique<ThreadBackend>();
    } else {
      shard->exec = std::make_unique<FiberBackend>(obs_);
    }
    shard->bound = kInfinity;
    if (shard_options_.shards > 1) {
      shard->outbox =
          std::make_unique<SpscRing<ShardMsg>>(shard_options_.channel_capacity);
    }
    shards_.push_back(std::move(shard));
  }
  tags_.dispatches = obs_.Intern("sim.dispatches");
  tags_.events = obs_.Intern("sim.events");
  tags_.wakes = obs_.Intern("sim.wakes");
  tags_.spawns = obs_.Intern("sim.spawns");
  tags_.kills = obs_.Intern("sim.kills");
  tags_.run = obs_.Intern("run");
  tags_.kill = obs_.Intern("killed");
  tags_.block = obs_.Intern("block");
  tags_.dispatch_ns = obs_.Intern("sim.dispatch.host_ns");
  shard_tags_.rounds = obs_.Intern("sim.shard.rounds");
  shard_tags_.msgs = obs_.Intern("sim.shard.msgs");
  shard_tags_.spills = obs_.Intern("sim.shard.channel_spills");
  // Which scheduler backend ran shows up in every metrics table.
  obs_.Add(obs_.Intern(backend_ == Backend::kThreads ? "sim.backend.threads"
                                                     : "sim.backend.fibers"));
}

int Engine::ShardOfNode(int node) const {
  const int count = shard_count();
  if (count <= 1) return 0;
  if (!shard_options_.shard_of_node) {
    return ((node % count) + count) % count;
  }
  const int s = shard_options_.shard_of_node(node);
  PSTK_CHECK_MSG(s >= 0 && s < count,
                 "shard_of_node(" << node << ") = " << s
                                  << " out of range [0, " << count << ")");
  return s;
}

int Engine::CurrentShardIndex() const {
  return tls_engine_ == this ? tls_shard_ : -1;
}

Engine::Shard& Engine::CurrentShard() {
  const int s = CurrentShardIndex();
  return *shards_[static_cast<std::size_t>(s >= 0 ? s : 0)];
}

void Engine::BindExecThread(int shard) {
  tls_engine_ = this;
  tls_shard_ = shard;
  obs::Registry::SetCurrentShard(shard);
}

SimTime Engine::now() const {
  const int cur = CurrentShardIndex();
  if (cur >= 0) return shards_[static_cast<std::size_t>(cur)]->frontier;
  SimTime frontier = 0;
  for (const auto& s : shards_) frontier = std::max(frontier, s->frontier);
  return frontier;
}

void Engine::EnableTrace(bool on) {
  obs_.Enable(on);
  if (on) {
    // Name tracks for processes spawned before tracing was switched on.
    for (Pid pid = 0; pid < procs_.size(); ++pid) {
      obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
    }
  }
}

const std::vector<TraceEvent>& Engine::trace() const {
  const std::vector<obs::Event>& events = obs_.events();
  if (events.size() < trace_seen_) {
    // The registry shrank (e.g. re-enabled tracing): rebuild from scratch.
    trace_compat_.clear();
    trace_seen_ = 0;
  }
  for (std::size_t i = trace_seen_; i < events.size(); ++i) {
    const obs::Event& e = events[i];
    if (!e.user) continue;
    trace_compat_.push_back(TraceEvent{
        e.time, e.track, obs_.Name(e.tag),
        e.detail == obs::kNoTag ? std::string() : obs_.Name(e.detail)});
  }
  trace_seen_ = events.size();
  return trace_compat_;
}

Engine::~Engine() { JoinAll(); }

Pid Engine::Spawn(std::string name, ProcessBody body, int node) {
  SimTime start = 0;
  const Shard& s = *shards_[static_cast<std::size_t>(
      std::max(CurrentShardIndex(), 0))];
  if (s.running != kNoPid) {
    start = procs_[s.running]->clock;
  } else if (running_loop_) {
    // Spawned from an event handler mid-run (e.g. a scheduler arrival):
    // the child starts at the event's instant, not back at t=0.
    start = s.frontier;
  }
  return SpawnAt(start, std::move(name), std::move(body), node);
}

Pid Engine::SpawnAt(SimTime start, std::string name, ProcessBody body,
                    int node) {
  const int shard = ShardOfNode(node);
  if (in_parallel_) {
    // procs_ may be read concurrently by other shard workers; growing it
    // is only safe while one shard is doing all the work.
    PSTK_CHECK_MSG(
        populated_shards_ <= 1,
        "mid-run Spawn on a multi-shard engine: spawn every process "
        "before Run(), or confine the job to a single shard");
    PSTK_CHECK_MSG(shard == CurrentShardIndex(),
                   "mid-run Spawn targets shard "
                       << shard << " from shard " << CurrentShardIndex());
  }
  const Pid pid = static_cast<Pid>(procs_.size());
  auto proc = std::make_unique<Proc>();
  proc->name = std::move(name);
  proc->node = node;
  proc->shard = shard;
  proc->body = std::move(body);
  proc->context = std::unique_ptr<Context>(new Context(*this, pid));
  proc->rng = Rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (pid + 1)));
  proc->clock = start;
  procs_.push_back(std::move(proc));
  MakeReady(pid, start);
  obs_.Add(tags_.spawns);
  if (obs_.enabled()) {
    obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
  }
  return pid;
}

void Engine::MakeReady(Pid pid, SimTime wake_at) {
  Proc& p = *procs_[pid];
  p.state = ProcState::kReady;
  p.wake_at = wake_at;
  shards_[static_cast<std::size_t>(p.shard)]->ready.Push(
      ReadyEntry{wake_at, pid, ++p.ready_stamp});
}

void Engine::RemoveReady(Pid pid) {
  // Lazy deletion: bump the stamp so any queued entry for this pid is
  // stale; PruneReady discards it when it reaches the top.
  ++procs_[pid]->ready_stamp;
}

void Engine::PruneReady(Shard& s) {
  while (!s.ready.empty()) {
    const ReadyEntry& top = s.ready.Top();
    const Proc& p = *procs_[top.pid];
    if (top.stamp == p.ready_stamp && p.state == ProcState::kReady) return;
    s.ready.PopTop();
  }
}

void Engine::ApplyWake(Pid pid, SimTime t) {
  Proc& p = *procs_[pid];
  switch (p.state) {
    case ProcState::kBlocked:
      MakeReady(pid, std::max(t, p.clock));
      break;
    case ProcState::kReady: {
      const SimTime new_wake = std::max(t, p.clock);
      if (new_wake < p.wake_at) {
        // Decrease-key: supersede the queued entry with a fresh stamp.
        RemoveReady(pid);
        MakeReady(pid, new_wake);
      }
      break;
    }
    case ProcState::kRunning:
    case ProcState::kDone:
    case ProcState::kKilled:
      break;  // nothing to wake
  }
}

void Engine::Wake(Pid pid, SimTime t) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Wake: bad pid " << pid);
  obs_.Add(tags_.wakes);
  const int target = procs_[pid]->shard;
  const int cur = CurrentShardIndex();
  if (!in_parallel_ || cur < 0 || target == cur) {
    ApplyWake(pid, t);
    return;
  }
  // Cross-shard: deliver as an event at exactly t on the target shard, so
  // the target observes it at the same virtual point the single-threaded
  // engine would (the send-side lookahead check guarantees t is beyond
  // everything the target may concurrently process this window).
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kWake;
  msg.dst_shard = target;
  msg.pid = pid;
  msg.t = t;
  SendCrossShard(*shards_[static_cast<std::size_t>(cur)], std::move(msg));
}

void Engine::ScheduleEvent(SimTime t, std::function<void()> fn) {
  if (!in_parallel_) {
    shards_[0]->events.Push(EventEntry{t, event_seq_++, std::move(fn)});
    return;
  }
  Shard& s = CurrentShard();
  s.events.Push(EventEntry{t, kMidRunSeqBase + s.mid_seq++, std::move(fn)});
}

void Engine::ScheduleEventFor(int node, SimTime t, std::function<void()> fn) {
  const int dst = ShardOfNode(node);
  if (!in_parallel_) {
    shards_[static_cast<std::size_t>(dst)]->events.Push(
        EventEntry{t, event_seq_++, std::move(fn)});
    return;
  }
  const int cur = CurrentShardIndex();
  if (dst == cur) {
    Shard& s = CurrentShard();
    s.events.Push(EventEntry{t, kMidRunSeqBase + s.mid_seq++, std::move(fn)});
    return;
  }
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kEvent;
  msg.dst_shard = dst;
  msg.t = t;
  msg.fn = std::move(fn);
  SendCrossShard(*shards_[static_cast<std::size_t>(std::max(cur, 0))],
                 std::move(msg));
}

void Engine::Kill(Pid pid, SimTime t) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Kill: bad pid " << pid);
  const int dst = procs_[pid]->shard;
  auto fn = [this, pid] { KillNow(pid); };
  if (!in_parallel_) {
    // Fault plans route to the victim's shard with the pre-run FIFO seq,
    // so --faults= injection replays identically at any shard count.
    shards_[static_cast<std::size_t>(dst)]->events.Push(
        EventEntry{t, event_seq_++, std::move(fn)});
    return;
  }
  const int cur = CurrentShardIndex();
  if (dst == cur) {
    Shard& s = CurrentShard();
    s.events.Push(EventEntry{t, kMidRunSeqBase + s.mid_seq++, std::move(fn)});
    return;
  }
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kKill;
  msg.dst_shard = dst;
  msg.pid = pid;
  msg.t = t;
  SendCrossShard(*shards_[static_cast<std::size_t>(std::max(cur, 0))],
                 std::move(msg));
}

void Engine::KillNow(Pid pid) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Kill: bad pid " << pid);
  Proc& p = *procs_[pid];
  if (p.state == ProcState::kDone || p.state == ProcState::kKilled) return;
  if (in_parallel_) {
    PSTK_CHECK_MSG(p.shard == CurrentShardIndex(),
                   "KillNow(" << pid << ") from shard " << CurrentShardIndex()
                              << " targets shard " << p.shard
                              << "; use Kill(pid, t) with a timestamp "
                                 "respecting the shard lookahead");
  }
  Shard& s = *shards_[static_cast<std::size_t>(p.shard)];
  p.kill_requested = true;
  obs_.Add(tags_.kills);
  // The kill lands at the initiating action's virtual time (clamped to the
  // victim's own clock): a locally computable instant, identical whether
  // the surrounding run is sharded or not.
  const SimTime t = std::max(s.activation, p.clock);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.kill, t);
  }
  if (p.state == ProcState::kBlocked) {
    MakeReady(pid, t);
  } else if (p.state == ProcState::kReady && p.wake_at > t) {
    // Die promptly rather than at the (possibly distant) scheduled wake.
    RemoveReady(pid);
    MakeReady(pid, t);
  }
}

std::vector<Pid> Engine::AlivePidsOnNode(int node) const {
  std::vector<Pid> pids;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    if (procs_[pid]->node == node && IsAlive(pid)) pids.push_back(pid);
  }
  return pids;
}

bool Engine::IsAlive(Pid pid) const {
  if (pid >= procs_.size()) return false;
  const ProcState s = procs_[pid]->state;
  return s != ProcState::kDone && s != ProcState::kKilled;
}

std::string Engine::DescribeBlocked() const {
  std::ostringstream oss;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state == ProcState::kBlocked) {
      oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
          << "): " << p.wait_reason << "\n";
    }
  }
  return oss.str();
}

namespace {
// "mpi-rank-3" -> "mpi"; "shmem-pe-0" -> "shmem"; "driver" -> "driver".
std::string FrameworkOf(const std::string& name) {
  const auto dash = name.find('-');
  return dash == std::string::npos ? name : name.substr(0, dash);
}
}  // namespace

std::string Engine::DeadlockReport() const {
  std::ostringstream oss;
  oss << "wait-for graph:\n";
  std::map<std::string, int> blame;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state != ProcState::kBlocked) continue;
    ++blame[FrameworkOf(p.name)];
    oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
        << ") waits [" << p.wait_reason << "]";
    const Pid held_by = p.WaitHolder();
    if (held_by != kNoPid && held_by < procs_.size()) {
      const Proc& h = *procs_[held_by];
      oss << " -> held by " << h.name << " (pid " << held_by << ")";
    } else {
      oss << " -> held by (no known owner)";
    }
    oss << "\n";
  }

  // Cycle extraction. Each blocked process has at most one wait-for edge
  // (its holder), so the graph is functional: follow holders, coloring
  // nodes; re-meeting a node from the current walk closes a cycle.
  //   0 = unvisited, 1 = on the current walk, 2 = finished.
  std::vector<std::uint8_t> color(procs_.size(), 0);
  std::vector<std::string> cycles;
  auto blocked_holder = [&](Pid pid) -> Pid {
    const Proc& p = *procs_[pid];
    if (p.state != ProcState::kBlocked) return kNoPid;
    const Pid held_by = p.WaitHolder();
    if (held_by == kNoPid || held_by >= procs_.size()) return kNoPid;
    return procs_[held_by]->state == ProcState::kBlocked ? held_by : kNoPid;
  };
  for (Pid start = 0; start < procs_.size(); ++start) {
    if (color[start] != 0 || procs_[start]->state != ProcState::kBlocked) {
      continue;
    }
    std::vector<Pid> walk;
    Pid cur = start;
    while (cur != kNoPid && color[cur] == 0) {
      color[cur] = 1;
      walk.push_back(cur);
      cur = blocked_holder(cur);
    }
    if (cur != kNoPid && color[cur] == 1) {
      // cur is on the current walk: the suffix from cur is a cycle.
      std::ostringstream cyc;
      bool in_cycle = false;
      for (Pid pid : walk) {
        if (pid == cur) in_cycle = true;
        if (in_cycle) cyc << procs_[pid]->name << " -> ";
      }
      cyc << procs_[cur]->name;
      cycles.push_back(cyc.str());
    }
    for (Pid pid : walk) color[pid] = 2;
  }

  if (cycles.empty()) {
    oss << "no wait-for cycle among simulated processes (a process waits "
           "on an event that never fires)\n";
  } else {
    for (const std::string& cycle : cycles) {
      oss << "wait-for cycle: " << cycle << "\n";
    }
  }
  oss << "blame:";
  for (const auto& [framework, count] : blame) {
    oss << " " << framework << "=" << count;
  }
  oss << " blocked process(es)\n";
  return oss.str();
}

void Engine::ExecuteBody(Proc& p) {
  Shard& s = *shards_[static_cast<std::size_t>(p.shard)];
  try {
    if (p.kill_requested) throw ProcessKilled{};
    p.body(*p.context);
    p.state = ProcState::kDone;
    ++s.completed;
  } catch (const ProcessKilled&) {
    p.state = ProcState::kKilled;
    ++s.killed;
  } catch (...) {
    p.error = std::current_exception();
    p.state = ProcState::kDone;
    ++s.completed;
  }
}

void Engine::DispatchProc(Shard& s, Pid pid) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == ProcState::kReady);
  p.clock = std::max(p.clock, p.wake_at);
  s.frontier = std::max(s.frontier, p.clock);
  s.activation = p.clock;
  p.state = ProcState::kRunning;
  s.running = pid;

  obs_.Add(tags_.dispatches);
  const bool traced = obs_.enabled();
  std::chrono::steady_clock::time_point host_start;
  if (traced) {
    obs_.BeginSpan(p.node, pid, tags_.run, p.clock);
    host_start = std::chrono::steady_clock::now();
  }

  s.exec->Resume(*this, p);

  s.running = kNoPid;
  if (traced) {
    // Host-clock dispatch latency (the one intentionally nondeterministic
    // metric; it never enters the trace event stream).
    obs_.Observe(tags_.dispatch_ns,
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - host_start)
                         .count()));
    obs_.EndSpan(p.node, pid, tags_.run, p.clock);
  }
}

void Engine::ProcYieldToEngine(Proc& p) {
  shards_[static_cast<std::size_t>(p.shard)]->exec->Suspend(p);
  CheckKilled(p);
}

void Engine::CheckKilled(Proc& p) {
  if (p.kill_requested) throw ProcessKilled{};
}

SimTime Engine::ProcBlock(Pid pid, std::string_view reason, Pid holder,
                          std::function<Pid()> holder_fn) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == ProcState::kRunning);
  p.state = ProcState::kBlocked;
  p.wait_reason = reason;
  p.wait_holder = holder;
  p.wait_holder_fn = std::move(holder_fn);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.block, p.clock, obs_.Intern(reason));
  }
  ProcYieldToEngine(p);
  p.wait_holder = kNoPid;
  p.wait_holder_fn = nullptr;
  return p.clock;
}

SimTime Engine::ProcBlockUntil(Pid pid, SimTime t, std::string_view reason) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == ProcState::kRunning);
  p.wait_reason = reason;
  MakeReady(pid, std::max(t, p.clock));
  ProcYieldToEngine(p);
  return p.clock;
}

bool Engine::StepShard(Shard& s) {
  if (s.fatal.has_value()) return false;
  PruneReady(s);
  const bool has_event = !s.events.empty();
  const bool has_proc = !s.ready.empty();
  if (!has_event && !has_proc) return false;
  const SimTime te = has_event ? s.events.Top().t : kInfinity;
  const SimTime tp = has_proc ? s.ready.Top().t : kInfinity;
  if (std::min(te, tp) >= s.bound) return false;  // conservative horizon
  if (te <= tp) {
    const std::uint64_t seq = s.events.Top().seq;
    const bool wake_delivery = s.events.Top().wake_delivery;
    auto fn = std::move(s.events.MutableTop().fn);
    s.events.PopTop();
    s.frontier = std::max(s.frontier, te);
    s.activation = te;
    if (!wake_delivery) obs_.Add(tags_.events);
    obs_.MarkBlock(te, /*kind=*/0, seq);
    fn();
  } else {
    const Pid pid = s.ready.Top().pid;
    s.ready.PopTop();
    obs_.MarkBlock(tp, /*kind=*/1, pid);
    DispatchProc(s, pid);
    s.frontier = std::max(s.frontier, procs_[pid]->clock);
    if (procs_[pid]->error != nullptr) {
      s.fatal = Shard::Fatal{procs_[pid]->clock, pid, procs_[pid]->error};
      return false;
    }
  }
  return true;
}

RunResult Engine::Run() {
  PSTK_CHECK_MSG(!running_loop_, "Engine::Run is not reentrant");
  running_loop_ = true;
  if (shard_count() > 1) {
    RunResult result = RunSharded();
    running_loop_ = false;
    return result;
  }
  Shard& s = *shards_[0];
  s.bound = kInfinity;
  while (StepShard(s)) {
  }
  running_loop_ = false;
  return RunEpilogue(s.fatal.has_value() ? s.fatal->error : nullptr);
}

RunResult Engine::RunEpilogue(std::exception_ptr fatal) {
  RunResult result;
  result.end_time = now();
  for (const auto& s : shards_) {
    result.completed += s->completed;
    result.killed += s->killed;
  }

  if (fatal != nullptr) {
    JoinAll();
    std::rethrow_exception(fatal);
  }

  std::size_t blocked = 0;
  for (const auto& p : procs_) {
    if (p->state == ProcState::kBlocked) ++blocked;
  }
  if (blocked > 0) {
    const std::string report = DeadlockReport();
    if (verify_.active()) {
      // A deadlock after fault injection is the expected teardown of a
      // non-fault-tolerant job, not a usage bug — downgrade to a warning.
      verify_.Report(verify::Finding{
          result.killed > 0 ? verify::Severity::kWarning
                            : verify::Severity::kError,
          "deadlock", "sim-deadlock", report, "", result.end_time});
    }
    result.status = Internal("simulation deadlock; " + report);
    // JoinAll force-unwinds the blocked processes, but those deaths are
    // cleanup, not simulated faults — result.killed keeps the pre-teardown
    // count.
    JoinAll();
  } else {
    result.status = OkStatus();
  }
  return result;
}

void Engine::JoinAll() {
  for (auto& proc : procs_) {
    Proc& p = *proc;
    if (p.state == ProcState::kBlocked || p.state == ProcState::kReady) {
      p.kill_requested = true;
    }
    shards_[static_cast<std::size_t>(p.shard)]->exec->Unwind(*this, p);
  }
}

}  // namespace pstk::sim
