#include "sim/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "sim/fiber.h"

namespace pstk::sim {

namespace {
constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

std::string_view BackendName(Backend backend) {
  return backend == Backend::kThreads ? "threads" : "fibers";
}

namespace {
std::optional<Backend>& BackendOverride() {
  static std::optional<Backend> override_backend;
  return override_backend;
}

Backend EnvBackend() {
  static const Backend from_env = [] {
    const char* env = std::getenv("PSTK_SIM_BACKEND");
    if (env == nullptr || *env == '\0') return Backend::kFibers;
    const std::string_view name(env);
    if (name == "threads") return Backend::kThreads;
    if (name != "fibers") {
      PSTK_WARN("sim") << "unknown PSTK_SIM_BACKEND '" << name
                       << "', using fibers";
    }
    return Backend::kFibers;
  }();
  return from_env;
}
}  // namespace

Backend DefaultBackend() {
  const auto& override_backend = BackendOverride();
  return override_backend.has_value() ? *override_backend : EnvBackend();
}

void SetDefaultBackend(Backend backend) { BackendOverride() = backend; }

// ---------------------------------------------------------------------------
// ThreadBackend — the legacy one-OS-thread-per-process execution mechanism.
// Cooperative batons: `engine_turn_` gates the engine loop, each process
// thread has its own `proc_turn` flag. Every dispatch is one condvar wake
// plus one condvar wait on each side (two host context switches).
// ---------------------------------------------------------------------------

namespace {

struct ThreadExec final : ProcExec {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool proc_turn = false;  // true: process may run; false: engine's turn
  bool started = false;
};

class ThreadBackend final : public ExecBackend {
 public:
  ~ThreadBackend() override = default;

  void Resume(Engine& engine, Proc& p) override {
    auto& x = Exec(p);
    engine_turn_ = false;
    if (!x.started) {
      x.started = true;
      x.thread = std::thread([this, &engine, &p] { ThreadMain(engine, p); });
    }
    {
      std::lock_guard<std::mutex> lk(x.mu);
      x.proc_turn = true;
    }
    x.cv.notify_one();
    {
      std::unique_lock<std::mutex> lk(engine_mu_);
      engine_cv_.wait(lk, [&] { return engine_turn_; });
    }
  }

  void Suspend(Proc& p) override {
    auto& x = Exec(p);
    {
      std::lock_guard<std::mutex> lk(engine_mu_);
      engine_turn_ = true;
    }
    engine_cv_.notify_one();
    {
      std::unique_lock<std::mutex> lk(x.mu);
      x.cv.wait(lk, [&] { return x.proc_turn; });
      x.proc_turn = false;
    }
  }

  void Unwind(Engine& engine, Proc& p) override {
    auto* x = static_cast<ThreadExec*>(p.exec.get());
    if (x == nullptr || !x->started) {
      // Never ran: nothing to join; mark the corpse.
      if (p.state != ProcState::kDone) p.state = ProcState::kKilled;
      return;
    }
    if (p.state == ProcState::kBlocked || p.state == ProcState::kReady) {
      // Force the thread to unwind (kill_requested is set) so it can join.
      Resume(engine, p);
    }
    if (x->thread.joinable()) x->thread.join();
  }

 private:
  static ThreadExec& Exec(Proc& p) {
    if (p.exec == nullptr) p.exec = std::make_unique<ThreadExec>();
    return static_cast<ThreadExec&>(*p.exec);
  }

  void ThreadMain(Engine& engine, Proc& p) {
    auto& x = static_cast<ThreadExec&>(*p.exec);
    // Wait for the first dispatch.
    {
      std::unique_lock<std::mutex> lk(x.mu);
      x.cv.wait(lk, [&] { return x.proc_turn; });
      x.proc_turn = false;
    }
    engine.ExecuteBody(p);
    // Hand the baton back to the engine for good.
    {
      std::lock_guard<std::mutex> lk(engine_mu_);
      engine_turn_ = true;
    }
    engine_cv_.notify_one();
  }

  std::mutex engine_mu_;
  std::condition_variable engine_cv_;
  bool engine_turn_ = true;
};

}  // namespace

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Pid Context::pid() const { return pid_; }

const std::string& Context::name() const {
  return engine_.procs_[pid_]->name;
}

int Context::node() const { return engine_.procs_[pid_]->node; }

SimTime Context::now() const { return engine_.procs_[pid_]->clock; }

Rng& Context::rng() { return engine_.procs_[pid_]->rng; }

void Context::Compute(SimTime seconds) {
  PSTK_CHECK_MSG(seconds >= 0, "negative compute time " << seconds);
  engine_.procs_[pid_]->clock += seconds;
}

void Context::SleepUntil(SimTime t) {
  // Loop: a stray Wake may resume us early; keep sleeping until t.
  while (engine_.procs_[pid_]->clock < t) {
    engine_.ProcBlockUntil(pid_, t, "sleep");
  }
}

void Context::Yield() {
  engine_.ProcBlockUntil(pid_, engine_.procs_[pid_]->clock, "yield");
}

SimTime Context::Block(std::string_view reason) {
  return engine_.ProcBlock(pid_, reason);
}

SimTime Context::BlockOn(std::string_view reason, Pid holder) {
  return engine_.ProcBlock(pid_, reason, holder);
}

SimTime Context::BlockOn(std::string_view reason, std::function<Pid()> holder) {
  return engine_.ProcBlock(pid_, reason, kNoPid, std::move(holder));
}

SimTime Context::BlockUntil(SimTime t, std::string_view reason) {
  return engine_.ProcBlockUntil(pid_, t, reason);
}

void Context::Trace(std::string_view tag, std::string_view detail) {
  obs::Registry& reg = engine_.obs_;
  if (!reg.enabled()) return;
  reg.Instant(node(), pid_, reg.Intern(tag), now(),
              detail.empty() ? obs::kNoTag : reg.Intern(detail),
              /*user=*/true);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::uint64_t seed, Backend backend)
    : seed_(seed), backend_(backend) {
  if (backend_ == Backend::kThreads) {
    exec_ = std::make_unique<ThreadBackend>();
  } else {
    exec_ = std::make_unique<FiberBackend>(obs_);
  }
  tags_.dispatches = obs_.Intern("sim.dispatches");
  tags_.events = obs_.Intern("sim.events");
  tags_.wakes = obs_.Intern("sim.wakes");
  tags_.spawns = obs_.Intern("sim.spawns");
  tags_.kills = obs_.Intern("sim.kills");
  tags_.run = obs_.Intern("run");
  tags_.kill = obs_.Intern("killed");
  tags_.block = obs_.Intern("block");
  tags_.dispatch_ns = obs_.Intern("sim.dispatch.host_ns");
  // Which scheduler backend ran shows up in every metrics table.
  obs_.Add(obs_.Intern(backend_ == Backend::kThreads ? "sim.backend.threads"
                                                     : "sim.backend.fibers"));
}

void Engine::EnableTrace(bool on) {
  obs_.Enable(on);
  if (on) {
    // Name tracks for processes spawned before tracing was switched on.
    for (Pid pid = 0; pid < procs_.size(); ++pid) {
      obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
    }
  }
}

const std::vector<TraceEvent>& Engine::trace() const {
  const std::vector<obs::Event>& events = obs_.events();
  if (events.size() < trace_seen_) {
    // The registry shrank (e.g. re-enabled tracing): rebuild from scratch.
    trace_compat_.clear();
    trace_seen_ = 0;
  }
  for (std::size_t i = trace_seen_; i < events.size(); ++i) {
    const obs::Event& e = events[i];
    if (!e.user) continue;
    trace_compat_.push_back(TraceEvent{
        e.time, e.track, obs_.Name(e.tag),
        e.detail == obs::kNoTag ? std::string() : obs_.Name(e.detail)});
  }
  trace_seen_ = events.size();
  return trace_compat_;
}

Engine::~Engine() { JoinAll(); }

Pid Engine::Spawn(std::string name, ProcessBody body, int node) {
  SimTime start = 0;
  if (running_ != kNoPid) start = procs_[running_]->clock;
  return SpawnAt(start, std::move(name), std::move(body), node);
}

Pid Engine::SpawnAt(SimTime start, std::string name, ProcessBody body,
                    int node) {
  const Pid pid = static_cast<Pid>(procs_.size());
  auto proc = std::make_unique<Proc>();
  proc->name = std::move(name);
  proc->node = node;
  proc->body = std::move(body);
  proc->context = std::unique_ptr<Context>(new Context(*this, pid));
  proc->rng = Rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (pid + 1)));
  proc->clock = start;
  procs_.push_back(std::move(proc));
  MakeReady(pid, start);
  obs_.Add(tags_.spawns);
  if (obs_.enabled()) {
    obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
  }
  return pid;
}

void Engine::MakeReady(Pid pid, SimTime wake_at) {
  Proc& p = *procs_[pid];
  p.state = ProcState::kReady;
  p.wake_at = wake_at;
  ready_.Push(ReadyEntry{wake_at, pid, ++p.ready_stamp});
}

void Engine::RemoveReady(Pid pid) {
  // Lazy deletion: bump the stamp so any queued entry for this pid is
  // stale; PruneReady discards it when it reaches the top.
  ++procs_[pid]->ready_stamp;
}

void Engine::PruneReady() {
  while (!ready_.empty()) {
    const ReadyEntry& top = ready_.Top();
    const Proc& p = *procs_[top.pid];
    if (top.stamp == p.ready_stamp && p.state == ProcState::kReady) return;
    ready_.PopTop();
  }
}

void Engine::Wake(Pid pid, SimTime t) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Wake: bad pid " << pid);
  obs_.Add(tags_.wakes);
  Proc& p = *procs_[pid];
  switch (p.state) {
    case ProcState::kBlocked:
      MakeReady(pid, std::max(t, p.clock));
      break;
    case ProcState::kReady: {
      const SimTime new_wake = std::max(t, p.clock);
      if (new_wake < p.wake_at) {
        // Decrease-key: supersede the queued entry with a fresh stamp.
        RemoveReady(pid);
        MakeReady(pid, new_wake);
      }
      break;
    }
    case ProcState::kRunning:
    case ProcState::kDone:
    case ProcState::kKilled:
      break;  // nothing to wake
  }
}

void Engine::ScheduleEvent(SimTime t, std::function<void()> fn) {
  events_.Push(EventEntry{t, event_seq_++, std::move(fn)});
}

void Engine::Kill(Pid pid, SimTime t) {
  ScheduleEvent(t, [this, pid] { KillNow(pid); });
}

void Engine::KillNow(Pid pid) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Kill: bad pid " << pid);
  Proc& p = *procs_[pid];
  if (p.state == ProcState::kDone || p.state == ProcState::kKilled) return;
  p.kill_requested = true;
  obs_.Add(tags_.kills);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.kill, std::max(frontier_, p.clock));
  }
  if (p.state == ProcState::kBlocked) {
    MakeReady(pid, std::max(frontier_, p.clock));
  } else if (p.state == ProcState::kReady && p.wake_at > frontier_) {
    // Die promptly rather than at the (possibly distant) scheduled wake.
    RemoveReady(pid);
    MakeReady(pid, std::max(frontier_, p.clock));
  }
}

std::vector<Pid> Engine::AlivePidsOnNode(int node) const {
  std::vector<Pid> pids;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    if (procs_[pid]->node == node && IsAlive(pid)) pids.push_back(pid);
  }
  return pids;
}

bool Engine::IsAlive(Pid pid) const {
  if (pid >= procs_.size()) return false;
  const ProcState s = procs_[pid]->state;
  return s != ProcState::kDone && s != ProcState::kKilled;
}

std::string Engine::DescribeBlocked() const {
  std::ostringstream oss;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state == ProcState::kBlocked) {
      oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
          << "): " << p.wait_reason << "\n";
    }
  }
  return oss.str();
}

namespace {
// "mpi-rank-3" -> "mpi"; "shmem-pe-0" -> "shmem"; "driver" -> "driver".
std::string FrameworkOf(const std::string& name) {
  const auto dash = name.find('-');
  return dash == std::string::npos ? name : name.substr(0, dash);
}
}  // namespace

std::string Engine::DeadlockReport() const {
  std::ostringstream oss;
  oss << "wait-for graph:\n";
  std::map<std::string, int> blame;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state != ProcState::kBlocked) continue;
    ++blame[FrameworkOf(p.name)];
    oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
        << ") waits [" << p.wait_reason << "]";
    const Pid held_by = p.WaitHolder();
    if (held_by != kNoPid && held_by < procs_.size()) {
      const Proc& h = *procs_[held_by];
      oss << " -> held by " << h.name << " (pid " << held_by << ")";
    } else {
      oss << " -> held by (no known owner)";
    }
    oss << "\n";
  }

  // Cycle extraction. Each blocked process has at most one wait-for edge
  // (its holder), so the graph is functional: follow holders, coloring
  // nodes; re-meeting a node from the current walk closes a cycle.
  //   0 = unvisited, 1 = on the current walk, 2 = finished.
  std::vector<std::uint8_t> color(procs_.size(), 0);
  std::vector<std::string> cycles;
  auto blocked_holder = [&](Pid pid) -> Pid {
    const Proc& p = *procs_[pid];
    if (p.state != ProcState::kBlocked) return kNoPid;
    const Pid held_by = p.WaitHolder();
    if (held_by == kNoPid || held_by >= procs_.size()) return kNoPid;
    return procs_[held_by]->state == ProcState::kBlocked ? held_by : kNoPid;
  };
  for (Pid start = 0; start < procs_.size(); ++start) {
    if (color[start] != 0 || procs_[start]->state != ProcState::kBlocked) {
      continue;
    }
    std::vector<Pid> walk;
    Pid cur = start;
    while (cur != kNoPid && color[cur] == 0) {
      color[cur] = 1;
      walk.push_back(cur);
      cur = blocked_holder(cur);
    }
    if (cur != kNoPid && color[cur] == 1) {
      // cur is on the current walk: the suffix from cur is a cycle.
      std::ostringstream cyc;
      bool in_cycle = false;
      for (Pid pid : walk) {
        if (pid == cur) in_cycle = true;
        if (in_cycle) cyc << procs_[pid]->name << " -> ";
      }
      cyc << procs_[cur]->name;
      cycles.push_back(cyc.str());
    }
    for (Pid pid : walk) color[pid] = 2;
  }

  if (cycles.empty()) {
    oss << "no wait-for cycle among simulated processes (a process waits "
           "on an event that never fires)\n";
  } else {
    for (const std::string& cycle : cycles) {
      oss << "wait-for cycle: " << cycle << "\n";
    }
  }
  oss << "blame:";
  for (const auto& [framework, count] : blame) {
    oss << " " << framework << "=" << count;
  }
  oss << " blocked process(es)\n";
  return oss.str();
}

void Engine::ExecuteBody(Proc& p) {
  try {
    if (p.kill_requested) throw ProcessKilled{};
    p.body(*p.context);
    p.state = ProcState::kDone;
    ++completed_;
  } catch (const ProcessKilled&) {
    p.state = ProcState::kKilled;
    ++killed_;
  } catch (...) {
    p.error = std::current_exception();
    p.state = ProcState::kDone;
    ++completed_;
  }
}

void Engine::DispatchProc(Pid pid) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == ProcState::kReady);
  p.clock = std::max(p.clock, p.wake_at);
  frontier_ = std::max(frontier_, p.clock);
  p.state = ProcState::kRunning;
  running_ = pid;

  obs_.Add(tags_.dispatches);
  const bool traced = obs_.enabled();
  std::chrono::steady_clock::time_point host_start;
  if (traced) {
    obs_.BeginSpan(p.node, pid, tags_.run, p.clock);
    host_start = std::chrono::steady_clock::now();
  }

  exec_->Resume(*this, p);

  running_ = kNoPid;
  if (traced) {
    // Host-clock dispatch latency (the one intentionally nondeterministic
    // metric; it never enters the trace event stream).
    obs_.Observe(tags_.dispatch_ns,
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - host_start)
                         .count()));
    obs_.EndSpan(p.node, pid, tags_.run, p.clock);
  }
}

void Engine::ProcYieldToEngine(Proc& p) {
  exec_->Suspend(p);
  CheckKilled(p);
}

void Engine::CheckKilled(Proc& p) {
  if (p.kill_requested) throw ProcessKilled{};
}

SimTime Engine::ProcBlock(Pid pid, std::string_view reason, Pid holder,
                          std::function<Pid()> holder_fn) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == ProcState::kRunning);
  p.state = ProcState::kBlocked;
  p.wait_reason = reason;
  p.wait_holder = holder;
  p.wait_holder_fn = std::move(holder_fn);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.block, p.clock, obs_.Intern(reason));
  }
  ProcYieldToEngine(p);
  p.wait_holder = kNoPid;
  p.wait_holder_fn = nullptr;
  return p.clock;
}

SimTime Engine::ProcBlockUntil(Pid pid, SimTime t, std::string_view reason) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == ProcState::kRunning);
  p.wait_reason = reason;
  MakeReady(pid, std::max(t, p.clock));
  ProcYieldToEngine(p);
  return p.clock;
}

RunResult Engine::Run() {
  PSTK_CHECK_MSG(!running_loop_, "Engine::Run is not reentrant");
  running_loop_ = true;
  RunResult result;

  std::exception_ptr fatal;
  while (fatal == nullptr) {
    PruneReady();
    const bool has_event = !events_.empty();
    const bool has_proc = !ready_.empty();
    if (!has_event && !has_proc) break;
    const SimTime te = has_event ? events_.Top().t : kInfinity;
    const SimTime tp = has_proc ? ready_.Top().t : kInfinity;
    if (te <= tp) {
      auto fn = std::move(events_.MutableTop().fn);
      events_.PopTop();
      frontier_ = std::max(frontier_, te);
      obs_.Add(tags_.events);
      fn();
    } else {
      const Pid pid = ready_.Top().pid;
      ready_.PopTop();
      DispatchProc(pid);
      frontier_ = std::max(frontier_, procs_[pid]->clock);
      if (procs_[pid]->error != nullptr) fatal = procs_[pid]->error;
    }
  }
  running_loop_ = false;

  result.end_time = frontier_;
  result.completed = completed_;
  result.killed = killed_;

  if (fatal != nullptr) {
    JoinAll();
    std::rethrow_exception(fatal);
  }

  std::size_t blocked = 0;
  for (const auto& p : procs_) {
    if (p->state == ProcState::kBlocked) ++blocked;
  }
  if (blocked > 0) {
    const std::string report = DeadlockReport();
    if (verify_.active()) {
      // A deadlock after fault injection is the expected teardown of a
      // non-fault-tolerant job, not a usage bug — downgrade to a warning.
      verify_.Report(verify::Finding{
          killed_ > 0 ? verify::Severity::kWarning : verify::Severity::kError,
          "deadlock", "sim-deadlock", report, "", frontier_});
    }
    result.status = Internal("simulation deadlock; " + report);
    // JoinAll force-unwinds the blocked processes, but those deaths are
    // cleanup, not simulated faults — result.killed keeps the pre-teardown
    // count.
    JoinAll();
  } else {
    result.status = OkStatus();
  }
  return result;
}

void Engine::JoinAll() {
  for (auto& proc : procs_) {
    Proc& p = *proc;
    if (p.state == ProcState::kBlocked || p.state == ProcState::kReady) {
      p.kill_requested = true;
    }
    exec_->Unwind(*this, p);
  }
}

}  // namespace pstk::sim
