#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/log.h"

namespace pstk::sim {

namespace {
constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Pid Context::pid() const { return pid_; }

const std::string& Context::name() const {
  return engine_.procs_[pid_]->name;
}

int Context::node() const { return engine_.procs_[pid_]->node; }

SimTime Context::now() const { return engine_.procs_[pid_]->clock; }

Rng& Context::rng() { return engine_.procs_[pid_]->rng; }

void Context::Compute(SimTime seconds) {
  PSTK_CHECK_MSG(seconds >= 0, "negative compute time " << seconds);
  engine_.procs_[pid_]->clock += seconds;
}

void Context::SleepUntil(SimTime t) {
  // Loop: a stray Wake may resume us early; keep sleeping until t.
  while (engine_.procs_[pid_]->clock < t) {
    engine_.ProcBlockUntil(pid_, t, "sleep");
  }
}

void Context::Yield() {
  engine_.ProcBlockUntil(pid_, engine_.procs_[pid_]->clock, "yield");
}

SimTime Context::Block(std::string_view reason) {
  return engine_.ProcBlock(pid_, reason);
}

SimTime Context::BlockUntil(SimTime t, std::string_view reason) {
  return engine_.ProcBlockUntil(pid_, t, reason);
}

void Context::Trace(std::string_view tag, std::string_view detail) {
  obs::Registry& reg = engine_.obs_;
  if (!reg.enabled()) return;
  reg.Instant(node(), pid_, reg.Intern(tag), now(),
              detail.empty() ? obs::kNoTag : reg.Intern(detail),
              /*user=*/true);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::uint64_t seed) : seed_(seed) {
  tags_.dispatches = obs_.Intern("sim.dispatches");
  tags_.events = obs_.Intern("sim.events");
  tags_.wakes = obs_.Intern("sim.wakes");
  tags_.spawns = obs_.Intern("sim.spawns");
  tags_.kills = obs_.Intern("sim.kills");
  tags_.run = obs_.Intern("run");
  tags_.kill = obs_.Intern("killed");
  tags_.block = obs_.Intern("block");
}

void Engine::EnableTrace(bool on) {
  obs_.Enable(on);
  if (on) {
    // Name tracks for processes spawned before tracing was switched on.
    for (Pid pid = 0; pid < procs_.size(); ++pid) {
      obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
    }
  }
}

const std::vector<TraceEvent>& Engine::trace() const {
  trace_compat_.clear();
  for (const obs::Event& e : obs_.events()) {
    if (!e.user) continue;
    trace_compat_.push_back(TraceEvent{
        e.time, e.track, obs_.Name(e.tag),
        e.detail == obs::kNoTag ? std::string() : obs_.Name(e.detail)});
  }
  return trace_compat_;
}

Engine::~Engine() { JoinAll(); }

Pid Engine::Spawn(std::string name, ProcessBody body, int node) {
  SimTime start = 0;
  if (running_ != kNoPid) start = procs_[running_]->clock;
  return SpawnAt(start, std::move(name), std::move(body), node);
}

Pid Engine::SpawnAt(SimTime start, std::string name, ProcessBody body,
                    int node) {
  const Pid pid = static_cast<Pid>(procs_.size());
  auto proc = std::make_unique<Proc>();
  proc->name = std::move(name);
  proc->node = node;
  proc->body = std::move(body);
  proc->context = std::unique_ptr<Context>(new Context(*this, pid));
  proc->rng = Rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (pid + 1)));
  proc->clock = start;
  proc->wake_at = start;
  proc->state = State::kReady;
  procs_.push_back(std::move(proc));
  ready_.emplace(start, pid);
  obs_.Add(tags_.spawns);
  if (obs_.enabled()) {
    obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
  }
  return pid;
}

void Engine::MakeReady(Pid pid, SimTime wake_at) {
  Proc& p = *procs_[pid];
  p.state = State::kReady;
  p.wake_at = wake_at;
  ready_.emplace(wake_at, pid);
}

void Engine::RemoveReady(Pid pid) {
  Proc& p = *procs_[pid];
  ready_.erase({p.wake_at, pid});
}

void Engine::Wake(Pid pid, SimTime t) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Wake: bad pid " << pid);
  obs_.Add(tags_.wakes);
  Proc& p = *procs_[pid];
  switch (p.state) {
    case State::kBlocked:
      MakeReady(pid, std::max(t, p.clock));
      break;
    case State::kReady: {
      const SimTime new_wake = std::max(t, p.clock);
      if (new_wake < p.wake_at) {
        RemoveReady(pid);
        MakeReady(pid, new_wake);
      }
      break;
    }
    case State::kRunning:
    case State::kDone:
    case State::kKilled:
      break;  // nothing to wake
  }
}

void Engine::ScheduleEvent(SimTime t, std::function<void()> fn) {
  events_.emplace(std::make_pair(t, event_seq_++), std::move(fn));
}

void Engine::Kill(Pid pid, SimTime t) {
  ScheduleEvent(t, [this, pid] { KillNow(pid); });
}

void Engine::KillNow(Pid pid) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Kill: bad pid " << pid);
  Proc& p = *procs_[pid];
  if (p.state == State::kDone || p.state == State::kKilled) return;
  p.kill_requested = true;
  obs_.Add(tags_.kills);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.kill, std::max(frontier_, p.clock));
  }
  if (p.state == State::kBlocked) {
    MakeReady(pid, std::max(frontier_, p.clock));
  } else if (p.state == State::kReady && p.wake_at > frontier_) {
    // Die promptly rather than at the (possibly distant) scheduled wake.
    RemoveReady(pid);
    MakeReady(pid, std::max(frontier_, p.clock));
  }
}

std::vector<Pid> Engine::AlivePidsOnNode(int node) const {
  std::vector<Pid> pids;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    if (procs_[pid]->node == node && IsAlive(pid)) pids.push_back(pid);
  }
  return pids;
}

bool Engine::IsAlive(Pid pid) const {
  if (pid >= procs_.size()) return false;
  const State s = procs_[pid]->state;
  return s != State::kDone && s != State::kKilled;
}

std::string Engine::DescribeBlocked() const {
  std::ostringstream oss;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state == State::kBlocked) {
      oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
          << "): " << p.wait_reason << "\n";
    }
  }
  return oss.str();
}

void Engine::StartThread(Pid pid) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(!p.thread_started);
  p.thread_started = true;
  p.thread = std::thread([this, pid] {
    Proc& self = *procs_[pid];
    // Wait for the first dispatch.
    {
      std::unique_lock<std::mutex> lk(self.mu);
      self.cv.wait(lk, [&] { return self.proc_turn; });
      self.proc_turn = false;
    }
    try {
      CheckKilled(self);
      self.body(*self.context);
      self.state = State::kDone;
      ++completed_;
    } catch (const ProcessKilled&) {
      self.state = State::kKilled;
      ++killed_;
    } catch (...) {
      self.error = std::current_exception();
      self.state = State::kDone;
      ++completed_;
    }
    // Hand the baton back to the engine for good.
    {
      std::lock_guard<std::mutex> lk(engine_mu_);
      engine_turn_ = true;
    }
    engine_cv_.notify_one();
  });
}

void Engine::DispatchProc(Pid pid) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == State::kReady);
  p.clock = std::max(p.clock, p.wake_at);
  frontier_ = std::max(frontier_, p.clock);
  p.state = State::kRunning;
  running_ = pid;
  engine_turn_ = false;

  obs_.Add(tags_.dispatches);
  const bool traced = obs_.enabled();
  if (traced) obs_.BeginSpan(p.node, pid, tags_.run, p.clock);

  if (!p.thread_started) StartThread(pid);
  {
    std::lock_guard<std::mutex> lk(p.mu);
    p.proc_turn = true;
  }
  p.cv.notify_one();
  {
    std::unique_lock<std::mutex> lk(engine_mu_);
    engine_cv_.wait(lk, [&] { return engine_turn_; });
  }
  running_ = kNoPid;
  if (traced) obs_.EndSpan(p.node, pid, tags_.run, p.clock);
}

void Engine::ProcYieldToEngine(Proc& p) {
  {
    std::lock_guard<std::mutex> lk(engine_mu_);
    engine_turn_ = true;
  }
  engine_cv_.notify_one();
  {
    std::unique_lock<std::mutex> lk(p.mu);
    p.cv.wait(lk, [&] { return p.proc_turn; });
    p.proc_turn = false;
  }
  CheckKilled(p);
}

void Engine::CheckKilled(Proc& p) {
  if (p.kill_requested) throw ProcessKilled{};
}

SimTime Engine::ProcBlock(Pid pid, std::string_view reason) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == State::kRunning);
  p.state = State::kBlocked;
  p.wait_reason = reason;
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.block, p.clock, obs_.Intern(reason));
  }
  ProcYieldToEngine(p);
  return p.clock;
}

SimTime Engine::ProcBlockUntil(Pid pid, SimTime t, std::string_view reason) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == State::kRunning);
  p.wait_reason = reason;
  MakeReady(pid, std::max(t, p.clock));
  p.state = State::kReady;  // MakeReady set it, keep explicit
  ProcYieldToEngine(p);
  return p.clock;
}

RunResult Engine::Run() {
  PSTK_CHECK_MSG(!running_loop_, "Engine::Run is not reentrant");
  running_loop_ = true;
  RunResult result;

  std::exception_ptr fatal;
  while (fatal == nullptr) {
    const bool has_event = !events_.empty();
    const bool has_proc = !ready_.empty();
    if (!has_event && !has_proc) break;
    const SimTime te = has_event ? events_.begin()->first.first : kInfinity;
    const SimTime tp = has_proc ? ready_.begin()->first : kInfinity;
    if (te <= tp) {
      auto it = events_.begin();
      auto fn = std::move(it->second);
      events_.erase(it);
      frontier_ = std::max(frontier_, te);
      obs_.Add(tags_.events);
      fn();
    } else {
      const Pid pid = ready_.begin()->second;
      ready_.erase(ready_.begin());
      DispatchProc(pid);
      frontier_ = std::max(frontier_, procs_[pid]->clock);
      if (procs_[pid]->error != nullptr) fatal = procs_[pid]->error;
    }
  }
  running_loop_ = false;

  result.end_time = frontier_;
  result.completed = completed_;
  result.killed = killed_;

  if (fatal != nullptr) {
    JoinAll();
    std::rethrow_exception(fatal);
  }

  std::size_t blocked = 0;
  for (const auto& p : procs_) {
    if (p->state == State::kBlocked) ++blocked;
  }
  if (blocked > 0) {
    result.status = Internal("simulation deadlock; blocked processes:\n" +
                             DescribeBlocked());
    // JoinAll force-kills the blocked threads, but those deaths are cleanup,
    // not simulated faults — result.killed keeps the pre-teardown count.
    JoinAll();
  } else {
    result.status = OkStatus();
  }
  return result;
}

void Engine::JoinAll() {
  for (auto& proc : procs_) {
    Proc& p = *proc;
    if (!p.thread_started) {
      p.state = State::kKilled;
      continue;
    }
    if (p.state == State::kBlocked || p.state == State::kReady) {
      // Force the thread to unwind so it can be joined.
      p.kill_requested = true;
      engine_turn_ = false;
      {
        std::lock_guard<std::mutex> lk(p.mu);
        p.proc_turn = true;
      }
      p.cv.notify_one();
      {
        std::unique_lock<std::mutex> lk(engine_mu_);
        engine_cv_.wait(lk, [&] { return engine_turn_; });
      }
    }
    if (p.thread.joinable()) p.thread.join();
  }
}

}  // namespace pstk::sim
