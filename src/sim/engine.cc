#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/log.h"

namespace pstk::sim {

namespace {
constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Pid Context::pid() const { return pid_; }

const std::string& Context::name() const {
  return engine_.procs_[pid_]->name;
}

int Context::node() const { return engine_.procs_[pid_]->node; }

SimTime Context::now() const { return engine_.procs_[pid_]->clock; }

Rng& Context::rng() { return engine_.procs_[pid_]->rng; }

void Context::Compute(SimTime seconds) {
  PSTK_CHECK_MSG(seconds >= 0, "negative compute time " << seconds);
  engine_.procs_[pid_]->clock += seconds;
}

void Context::SleepUntil(SimTime t) {
  // Loop: a stray Wake may resume us early; keep sleeping until t.
  while (engine_.procs_[pid_]->clock < t) {
    engine_.ProcBlockUntil(pid_, t, "sleep");
  }
}

void Context::Yield() {
  engine_.ProcBlockUntil(pid_, engine_.procs_[pid_]->clock, "yield");
}

SimTime Context::Block(std::string_view reason) {
  return engine_.ProcBlock(pid_, reason);
}

SimTime Context::BlockOn(std::string_view reason, Pid holder) {
  return engine_.ProcBlock(pid_, reason, holder);
}

SimTime Context::BlockOn(std::string_view reason, std::function<Pid()> holder) {
  return engine_.ProcBlock(pid_, reason, kNoPid, std::move(holder));
}

SimTime Context::BlockUntil(SimTime t, std::string_view reason) {
  return engine_.ProcBlockUntil(pid_, t, reason);
}

void Context::Trace(std::string_view tag, std::string_view detail) {
  obs::Registry& reg = engine_.obs_;
  if (!reg.enabled()) return;
  reg.Instant(node(), pid_, reg.Intern(tag), now(),
              detail.empty() ? obs::kNoTag : reg.Intern(detail),
              /*user=*/true);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::uint64_t seed) : seed_(seed) {
  tags_.dispatches = obs_.Intern("sim.dispatches");
  tags_.events = obs_.Intern("sim.events");
  tags_.wakes = obs_.Intern("sim.wakes");
  tags_.spawns = obs_.Intern("sim.spawns");
  tags_.kills = obs_.Intern("sim.kills");
  tags_.run = obs_.Intern("run");
  tags_.kill = obs_.Intern("killed");
  tags_.block = obs_.Intern("block");
}

void Engine::EnableTrace(bool on) {
  obs_.Enable(on);
  if (on) {
    // Name tracks for processes spawned before tracing was switched on.
    for (Pid pid = 0; pid < procs_.size(); ++pid) {
      obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
    }
  }
}

const std::vector<TraceEvent>& Engine::trace() const {
  trace_compat_.clear();
  for (const obs::Event& e : obs_.events()) {
    if (!e.user) continue;
    trace_compat_.push_back(TraceEvent{
        e.time, e.track, obs_.Name(e.tag),
        e.detail == obs::kNoTag ? std::string() : obs_.Name(e.detail)});
  }
  return trace_compat_;
}

Engine::~Engine() { JoinAll(); }

Pid Engine::Spawn(std::string name, ProcessBody body, int node) {
  SimTime start = 0;
  if (running_ != kNoPid) start = procs_[running_]->clock;
  return SpawnAt(start, std::move(name), std::move(body), node);
}

Pid Engine::SpawnAt(SimTime start, std::string name, ProcessBody body,
                    int node) {
  const Pid pid = static_cast<Pid>(procs_.size());
  auto proc = std::make_unique<Proc>();
  proc->name = std::move(name);
  proc->node = node;
  proc->body = std::move(body);
  proc->context = std::unique_ptr<Context>(new Context(*this, pid));
  proc->rng = Rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (pid + 1)));
  proc->clock = start;
  proc->wake_at = start;
  proc->state = State::kReady;
  procs_.push_back(std::move(proc));
  ready_.emplace(start, pid);
  obs_.Add(tags_.spawns);
  if (obs_.enabled()) {
    obs_.SetTrackName(procs_[pid]->node, pid, procs_[pid]->name);
  }
  return pid;
}

void Engine::MakeReady(Pid pid, SimTime wake_at) {
  Proc& p = *procs_[pid];
  p.state = State::kReady;
  p.wake_at = wake_at;
  ready_.emplace(wake_at, pid);
}

void Engine::RemoveReady(Pid pid) {
  Proc& p = *procs_[pid];
  ready_.erase({p.wake_at, pid});
}

void Engine::Wake(Pid pid, SimTime t) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Wake: bad pid " << pid);
  obs_.Add(tags_.wakes);
  Proc& p = *procs_[pid];
  switch (p.state) {
    case State::kBlocked:
      MakeReady(pid, std::max(t, p.clock));
      break;
    case State::kReady: {
      const SimTime new_wake = std::max(t, p.clock);
      if (new_wake < p.wake_at) {
        RemoveReady(pid);
        MakeReady(pid, new_wake);
      }
      break;
    }
    case State::kRunning:
    case State::kDone:
    case State::kKilled:
      break;  // nothing to wake
  }
}

void Engine::ScheduleEvent(SimTime t, std::function<void()> fn) {
  events_.emplace(std::make_pair(t, event_seq_++), std::move(fn));
}

void Engine::Kill(Pid pid, SimTime t) {
  ScheduleEvent(t, [this, pid] { KillNow(pid); });
}

void Engine::KillNow(Pid pid) {
  PSTK_CHECK_MSG(pid < procs_.size(), "Kill: bad pid " << pid);
  Proc& p = *procs_[pid];
  if (p.state == State::kDone || p.state == State::kKilled) return;
  p.kill_requested = true;
  obs_.Add(tags_.kills);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.kill, std::max(frontier_, p.clock));
  }
  if (p.state == State::kBlocked) {
    MakeReady(pid, std::max(frontier_, p.clock));
  } else if (p.state == State::kReady && p.wake_at > frontier_) {
    // Die promptly rather than at the (possibly distant) scheduled wake.
    RemoveReady(pid);
    MakeReady(pid, std::max(frontier_, p.clock));
  }
}

std::vector<Pid> Engine::AlivePidsOnNode(int node) const {
  std::vector<Pid> pids;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    if (procs_[pid]->node == node && IsAlive(pid)) pids.push_back(pid);
  }
  return pids;
}

bool Engine::IsAlive(Pid pid) const {
  if (pid >= procs_.size()) return false;
  const State s = procs_[pid]->state;
  return s != State::kDone && s != State::kKilled;
}

std::string Engine::DescribeBlocked() const {
  std::ostringstream oss;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state == State::kBlocked) {
      oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
          << "): " << p.wait_reason << "\n";
    }
  }
  return oss.str();
}

namespace {
// "mpi-rank-3" -> "mpi"; "shmem-pe-0" -> "shmem"; "driver" -> "driver".
std::string FrameworkOf(const std::string& name) {
  const auto dash = name.find('-');
  return dash == std::string::npos ? name : name.substr(0, dash);
}
}  // namespace

std::string Engine::DeadlockReport() const {
  std::ostringstream oss;
  oss << "wait-for graph:\n";
  std::map<std::string, int> blame;
  for (Pid pid = 0; pid < procs_.size(); ++pid) {
    const Proc& p = *procs_[pid];
    if (p.state != State::kBlocked) continue;
    ++blame[FrameworkOf(p.name)];
    oss << "  " << p.name << " (pid " << pid << ", t=" << p.clock
        << ") waits [" << p.wait_reason << "]";
    const Pid held_by = p.WaitHolder();
    if (held_by != kNoPid && held_by < procs_.size()) {
      const Proc& h = *procs_[held_by];
      oss << " -> held by " << h.name << " (pid " << held_by << ")";
    } else {
      oss << " -> held by (no known owner)";
    }
    oss << "\n";
  }

  // Cycle extraction. Each blocked process has at most one wait-for edge
  // (its holder), so the graph is functional: follow holders, coloring
  // nodes; re-meeting a node from the current walk closes a cycle.
  //   0 = unvisited, 1 = on the current walk, 2 = finished.
  std::vector<std::uint8_t> color(procs_.size(), 0);
  std::vector<std::string> cycles;
  auto blocked_holder = [&](Pid pid) -> Pid {
    const Proc& p = *procs_[pid];
    if (p.state != State::kBlocked) return kNoPid;
    const Pid held_by = p.WaitHolder();
    if (held_by == kNoPid || held_by >= procs_.size()) return kNoPid;
    return procs_[held_by]->state == State::kBlocked ? held_by : kNoPid;
  };
  for (Pid start = 0; start < procs_.size(); ++start) {
    if (color[start] != 0 || procs_[start]->state != State::kBlocked) continue;
    std::vector<Pid> walk;
    Pid cur = start;
    while (cur != kNoPid && color[cur] == 0) {
      color[cur] = 1;
      walk.push_back(cur);
      cur = blocked_holder(cur);
    }
    if (cur != kNoPid && color[cur] == 1) {
      // cur is on the current walk: the suffix from cur is a cycle.
      std::ostringstream cyc;
      bool in_cycle = false;
      for (Pid pid : walk) {
        if (pid == cur) in_cycle = true;
        if (in_cycle) cyc << procs_[pid]->name << " -> ";
      }
      cyc << procs_[cur]->name;
      cycles.push_back(cyc.str());
    }
    for (Pid pid : walk) color[pid] = 2;
  }

  if (cycles.empty()) {
    oss << "no wait-for cycle among simulated processes (a process waits "
           "on an event that never fires)\n";
  } else {
    for (const std::string& cycle : cycles) {
      oss << "wait-for cycle: " << cycle << "\n";
    }
  }
  oss << "blame:";
  for (const auto& [framework, count] : blame) {
    oss << " " << framework << "=" << count;
  }
  oss << " blocked process(es)\n";
  return oss.str();
}

void Engine::StartThread(Pid pid) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(!p.thread_started);
  p.thread_started = true;
  p.thread = std::thread([this, pid] {
    Proc& self = *procs_[pid];
    // Wait for the first dispatch.
    {
      std::unique_lock<std::mutex> lk(self.mu);
      self.cv.wait(lk, [&] { return self.proc_turn; });
      self.proc_turn = false;
    }
    try {
      CheckKilled(self);
      self.body(*self.context);
      self.state = State::kDone;
      ++completed_;
    } catch (const ProcessKilled&) {
      self.state = State::kKilled;
      ++killed_;
    } catch (...) {
      self.error = std::current_exception();
      self.state = State::kDone;
      ++completed_;
    }
    // Hand the baton back to the engine for good.
    {
      std::lock_guard<std::mutex> lk(engine_mu_);
      engine_turn_ = true;
    }
    engine_cv_.notify_one();
  });
}

void Engine::DispatchProc(Pid pid) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == State::kReady);
  p.clock = std::max(p.clock, p.wake_at);
  frontier_ = std::max(frontier_, p.clock);
  p.state = State::kRunning;
  running_ = pid;
  engine_turn_ = false;

  obs_.Add(tags_.dispatches);
  const bool traced = obs_.enabled();
  if (traced) obs_.BeginSpan(p.node, pid, tags_.run, p.clock);

  if (!p.thread_started) StartThread(pid);
  {
    std::lock_guard<std::mutex> lk(p.mu);
    p.proc_turn = true;
  }
  p.cv.notify_one();
  {
    std::unique_lock<std::mutex> lk(engine_mu_);
    engine_cv_.wait(lk, [&] { return engine_turn_; });
  }
  running_ = kNoPid;
  if (traced) obs_.EndSpan(p.node, pid, tags_.run, p.clock);
}

void Engine::ProcYieldToEngine(Proc& p) {
  {
    std::lock_guard<std::mutex> lk(engine_mu_);
    engine_turn_ = true;
  }
  engine_cv_.notify_one();
  {
    std::unique_lock<std::mutex> lk(p.mu);
    p.cv.wait(lk, [&] { return p.proc_turn; });
    p.proc_turn = false;
  }
  CheckKilled(p);
}

void Engine::CheckKilled(Proc& p) {
  if (p.kill_requested) throw ProcessKilled{};
}

SimTime Engine::ProcBlock(Pid pid, std::string_view reason, Pid holder,
                          std::function<Pid()> holder_fn) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == State::kRunning);
  p.state = State::kBlocked;
  p.wait_reason = reason;
  p.wait_holder = holder;
  p.wait_holder_fn = std::move(holder_fn);
  if (obs_.enabled()) {
    obs_.Instant(p.node, pid, tags_.block, p.clock, obs_.Intern(reason));
  }
  ProcYieldToEngine(p);
  p.wait_holder = kNoPid;
  p.wait_holder_fn = nullptr;
  return p.clock;
}

SimTime Engine::ProcBlockUntil(Pid pid, SimTime t, std::string_view reason) {
  Proc& p = *procs_[pid];
  PSTK_CHECK(p.state == State::kRunning);
  p.wait_reason = reason;
  MakeReady(pid, std::max(t, p.clock));
  p.state = State::kReady;  // MakeReady set it, keep explicit
  ProcYieldToEngine(p);
  return p.clock;
}

RunResult Engine::Run() {
  PSTK_CHECK_MSG(!running_loop_, "Engine::Run is not reentrant");
  running_loop_ = true;
  RunResult result;

  std::exception_ptr fatal;
  while (fatal == nullptr) {
    const bool has_event = !events_.empty();
    const bool has_proc = !ready_.empty();
    if (!has_event && !has_proc) break;
    const SimTime te = has_event ? events_.begin()->first.first : kInfinity;
    const SimTime tp = has_proc ? ready_.begin()->first : kInfinity;
    if (te <= tp) {
      auto it = events_.begin();
      auto fn = std::move(it->second);
      events_.erase(it);
      frontier_ = std::max(frontier_, te);
      obs_.Add(tags_.events);
      fn();
    } else {
      const Pid pid = ready_.begin()->second;
      ready_.erase(ready_.begin());
      DispatchProc(pid);
      frontier_ = std::max(frontier_, procs_[pid]->clock);
      if (procs_[pid]->error != nullptr) fatal = procs_[pid]->error;
    }
  }
  running_loop_ = false;

  result.end_time = frontier_;
  result.completed = completed_;
  result.killed = killed_;

  if (fatal != nullptr) {
    JoinAll();
    std::rethrow_exception(fatal);
  }

  std::size_t blocked = 0;
  for (const auto& p : procs_) {
    if (p->state == State::kBlocked) ++blocked;
  }
  if (blocked > 0) {
    const std::string report = DeadlockReport();
    if (verify_.active()) {
      // A deadlock after fault injection is the expected teardown of a
      // non-fault-tolerant job, not a usage bug — downgrade to a warning.
      verify_.Report(verify::Finding{
          killed_ > 0 ? verify::Severity::kWarning : verify::Severity::kError,
          "deadlock", "sim-deadlock", report, "", frontier_});
    }
    result.status = Internal("simulation deadlock; " + report);
    // JoinAll force-kills the blocked threads, but those deaths are cleanup,
    // not simulated faults — result.killed keeps the pre-teardown count.
    JoinAll();
  } else {
    result.status = OkStatus();
  }
  return result;
}

void Engine::JoinAll() {
  for (auto& proc : procs_) {
    Proc& p = *proc;
    if (!p.thread_started) {
      p.state = State::kKilled;
      continue;
    }
    if (p.state == State::kBlocked || p.state == State::kReady) {
      // Force the thread to unwind so it can be joined.
      p.kill_requested = true;
      engine_turn_ = false;
      {
        std::lock_guard<std::mutex> lk(p.mu);
        p.proc_turn = true;
      }
      p.cv.notify_one();
      {
        std::unique_lock<std::mutex> lk(engine_mu_);
        engine_cv_.wait(lk, [&] { return engine_turn_; });
      }
    }
    if (p.thread.joinable()) p.thread.join();
  }
}

}  // namespace pstk::sim
