#include "sim/timeline.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::sim {

SimTime Timeline::Acquire(SimTime ready, SimTime duration) {
  PSTK_DCHECK(duration >= 0);
  const SimTime start = std::max(ready, next_free_);
  next_free_ = start + duration;
  busy_ += duration;
  ++ops_;
  return next_free_;
}

SimTime Timeline::Peek(SimTime ready, SimTime duration) const {
  return std::max(ready, next_free_) + duration;
}

ChannelBank::ChannelBank(std::size_t channels) {
  PSTK_CHECK_MSG(channels >= 1, "ChannelBank needs at least one channel");
  for (std::size_t i = 0; i < channels; ++i) free_at_.insert(0.0);
}

SimTime ChannelBank::Acquire(SimTime ready, SimTime duration) {
  PSTK_DCHECK(duration >= 0);
  auto it = free_at_.begin();
  const SimTime start = std::max(ready, *it);
  free_at_.erase(it);
  const SimTime done = start + duration;
  free_at_.insert(done);
  return done;
}

std::size_t ConcurrencyWindow::Record(SimTime start, SimTime end) {
  // Callers issue spans with nondecreasing start times (FIFO resources), so
  // spans that ended before `start` can never overlap again — prune them to
  // keep Record amortized O(active).
  std::erase_if(spans_, [start](const Span& s) { return s.end <= start; });
  std::size_t overlapping = 0;
  for (const Span& span : spans_) {
    if (span.start < end && start < span.end) ++overlapping;
  }
  spans_.push_back(Span{start, end});
  return overlapping;
}

std::size_t ConcurrencyWindow::active_at(SimTime t) const {
  std::size_t count = 0;
  for (const Span& span : spans_) {
    if (span.start <= t && t < span.end) ++count;
  }
  return count;
}

}  // namespace pstk::sim
