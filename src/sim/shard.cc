// Sharded (conservative PDES) run mode of sim::Engine — the coordinator
// and shard-worker machinery. See engine.h's file comment and DESIGN.md
// §execution backends for the protocol; the single-shard fast path lives
// entirely in engine.cc and never touches anything here.
//
// Round structure (coordinator thread):
//   1. DrainChannels   — pop every shard's SPSC ring (plus spill vector),
//                        sort per producer by src_seq, apply to the target
//                        shards' event heaps with coordinator FIFO seqs;
//   2. ComputeBounds   — next-action time per shard, then
//                        bound(s) = min over s' != s of next(s') + L(s', s);
//   3. release workers — every shard processes actions with t < bound(s)
//                        in parallel (StepShard, shared with the oracle);
//   4. barrier         — wait for all workers to park, collect fatals.
// Progress: the globally minimal shard's bound strictly exceeds its next
// action time (all lookaheads are positive), so every round retires at
// least one action; termination when every heap is empty.
#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/engine.h"

namespace pstk::sim {

namespace {
constexpr SimTime kInfinity = std::numeric_limits<SimTime>::infinity();
// Coordinator-applied (routed) deliveries order after every pre-run seq
// and every mid-round local seq at the same timestamp.
constexpr std::uint64_t kRoutedSeqBase = std::uint64_t{1} << 48;
}  // namespace

void Engine::BuildLookaheadMatrix() {
  const int count = shard_count();
  lookahead_.assign(static_cast<std::size_t>(count) * count, kInfinity);
  std::vector<char> populated(static_cast<std::size_t>(count), 0);
  for (const auto& p : procs_) {
    populated[static_cast<std::size_t>(p->shard)] = 1;
  }
  for (int s = 0; s < count; ++s) {
    if (!shards_[static_cast<std::size_t>(s)]->events.empty()) {
      populated[static_cast<std::size_t>(s)] = 1;
    }
  }
  populated_shards_ = 0;
  for (char p : populated) populated_shards_ += p;

  if (populated_shards_ > 1) {
    PSTK_CHECK_MSG(static_cast<bool>(shard_options_.lookahead),
                   "sharded run with " << populated_shards_
                                       << " populated shards requires "
                                          "ShardOptions.lookahead (derive it "
                                          "from the interconnect with "
                                          "net::ShardLookahead)");
  }
  if (!shard_options_.lookahead) return;
  for (int src = 0; src < count; ++src) {
    for (int dst = 0; dst < count; ++dst) {
      if (src == dst) continue;
      const SimTime l = shard_options_.lookahead(src, dst);
      if (populated[static_cast<std::size_t>(src)] &&
          populated[static_cast<std::size_t>(dst)]) {
        PSTK_CHECK_MSG(l > 0, "lookahead(" << src << ", " << dst << ") = " << l
                                           << " — must be > 0 between "
                                              "populated shards");
      }
      lookahead_[static_cast<std::size_t>(src) * count + dst] = l;
    }
  }
}

SimTime Engine::LookaheadOrDie(int src, int dst) const {
  const SimTime l =
      lookahead_[static_cast<std::size_t>(src) * shard_count() + dst];
  PSTK_CHECK_MSG(l > 0 && l < kInfinity,
                 "no positive lookahead configured between shards "
                     << src << " and " << dst
                     << "; provide ShardOptions.lookahead");
  return l;
}

void Engine::SendCrossShard(Shard& from, ShardMsg msg) {
  const int src = CurrentShardIndex();
  // The sender's current virtual time: its running process's clock, or
  // the activating event's time when sent from an engine event.
  const SimTime sender_now =
      from.running != kNoPid ? procs_[from.running]->clock : from.activation;
  const SimTime min_t = sender_now + LookaheadOrDie(src, msg.dst_shard);
  PSTK_CHECK_MSG(
      msg.t >= min_t,
      "cross-shard interaction at t=" << msg.t << " violates lookahead: shard "
                                      << src << " -> shard " << msg.dst_shard
                                      << " requires t >= " << min_t
                                      << " (sender time " << sender_now
                                      << " + lookahead)");
  msg.src_seq = from.msg_seq++;
  obs_.Add(shard_tags_.msgs);
  if (!from.outbox->Push(msg)) {
    obs_.Add(shard_tags_.spills);
    from.spill.push_back(std::move(msg));
  }
}

void Engine::DrainChannels() {
  std::vector<ShardMsg> staged;
  for (auto& shard : shards_) {
    const std::size_t start = staged.size();
    ShardMsg msg;
    while (shard->outbox->Pop(&msg)) staged.push_back(std::move(msg));
    for (ShardMsg& spilled : shard->spill) staged.push_back(std::move(spilled));
    shard->spill.clear();
    // Within one producer, apply in send order (ring entries always
    // precede spills, but sort anyway — determinism is load-bearing).
    std::sort(staged.begin() + static_cast<std::ptrdiff_t>(start),
              staged.end(), [](const ShardMsg& a, const ShardMsg& b) {
                return a.src_seq < b.src_seq;
              });
  }
  for (ShardMsg& msg : staged) {
    Shard& dst = *shards_[static_cast<std::size_t>(msg.dst_shard)];
    switch (msg.kind) {
      case ShardMsg::Kind::kWake: {
        const Pid pid = msg.pid;
        const SimTime t = msg.t;
        // Delivered as a wake event at exactly t: the target observes the
        // wake at the same virtual point the single-threaded engine would.
        dst.events.Push(EventEntry{t, routed_seq_++,
                                   [this, pid, t] { ApplyWake(pid, t); },
                                   /*wake_delivery=*/true});
        break;
      }
      case ShardMsg::Kind::kKill: {
        const Pid pid = msg.pid;
        dst.events.Push(
            EventEntry{msg.t, routed_seq_++, [this, pid] { KillNow(pid); }});
        break;
      }
      case ShardMsg::Kind::kEvent:
        dst.events.Push(EventEntry{msg.t, routed_seq_++, std::move(msg.fn)});
        break;
    }
  }
}

bool Engine::ComputeBounds() {
  const int count = shard_count();
  std::vector<SimTime> next(static_cast<std::size_t>(count), kInfinity);
  bool any = false;
  for (int s = 0; s < count; ++s) {
    Shard& shard = *shards_[static_cast<std::size_t>(s)];
    PruneReady(shard);
    SimTime t = kInfinity;
    if (!shard.events.empty()) t = shard.events.Top().t;
    if (!shard.ready.empty()) t = std::min(t, shard.ready.Top().t);
    next[static_cast<std::size_t>(s)] = t;
    if (t < kInfinity) any = true;
  }
  if (!any) return false;
  for (int s = 0; s < count; ++s) {
    SimTime bound = kInfinity;
    for (int o = 0; o < count; ++o) {
      if (o == s || next[static_cast<std::size_t>(o)] == kInfinity) continue;
      bound = std::min(bound,
                       next[static_cast<std::size_t>(o)] +
                           lookahead_[static_cast<std::size_t>(o) * count + s]);
    }
    shards_[static_cast<std::size_t>(s)]->bound = bound;
  }
  return true;
}

void Engine::RunShardRound(Shard& s) {
  try {
    while (StepShard(s)) {
    }
  } catch (...) {
    // An exception escaping an engine *event* (process-body exceptions are
    // captured in ExecuteBody): surface it like a process fatal so the
    // coordinator stops the run and rethrows deterministically.
    if (!s.fatal.has_value()) {
      s.fatal = Shard::Fatal{s.activation, kNoPid, std::current_exception()};
    }
  }
}

void Engine::ShardWorkerMain(int shard) {
  BindExecThread(shard);
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::uint64_t seen_round = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(round_mu_);
      round_start_cv_.wait(
          lk, [&] { return shutdown_workers_ || round_ > seen_round; });
      if (shutdown_workers_) return;
      seen_round = round_;
    }
    RunShardRound(s);
    {
      std::lock_guard<std::mutex> lk(round_mu_);
      if (--round_running_ == 0) round_done_cv_.notify_all();
    }
  }
}

RunResult Engine::RunSharded() {
  BuildLookaheadMatrix();
  routed_seq_ = kRoutedSeqBase;
  obs_.ConfigureShards(shard_count());

  shutdown_workers_ = false;
  round_ = 0;
  workers_.reserve(static_cast<std::size_t>(shard_count()));
  for (int s = 0; s < shard_count(); ++s) {
    workers_.emplace_back([this, s] { ShardWorkerMain(s); });
  }

  std::exception_ptr fatal;
  for (;;) {
    DrainChannels();
    if (!ComputeBounds()) break;
    obs_.Add(shard_tags_.rounds);
    {
      std::unique_lock<std::mutex> lk(round_mu_);
      in_parallel_ = true;
      round_running_ = static_cast<std::size_t>(shard_count());
      ++round_;
      round_start_cv_.notify_all();
      round_done_cv_.wait(lk, [&] { return round_running_ == 0; });
      in_parallel_ = false;
    }
    // Deterministic fatal selection: the (t, pid)-smallest across shards,
    // independent of which worker hit its exception first on the host.
    const Shard::Fatal* first = nullptr;
    for (const auto& shard : shards_) {
      if (!shard->fatal.has_value()) continue;
      const Shard::Fatal& f = *shard->fatal;
      if (first == nullptr || f.t < first->t ||
          (f.t == first->t && f.pid < first->pid)) {
        first = &f;
      }
    }
    if (first != nullptr) {
      fatal = first->error;
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lk(round_mu_);
    shutdown_workers_ = true;
  }
  round_start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Merge per-shard obs logs before JoinAll so teardown unwind events
  // append to the merged stream in the main thread's (deterministic)
  // order, after every in-run event.
  obs_.MergeShards();
  return RunEpilogue(fatal);
}

}  // namespace pstk::sim
