// 4-ary min-heap used for the engine's ready and event queues.
//
// Replaces std::set / std::map in the scheduler hot path: entries are
// small, stored contiguously, and sift through at most log_4(n) levels,
// each probing up to four children that share one or two cache lines.
// Deletion and decrease-key are done *lazily* by the caller: a superseded
// entry stays in the heap carrying a stale generation stamp and is
// discarded when it surfaces at the top (Engine::PruneReady), so every
// scheduler mutation is a plain O(log n) push with no tree search.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pstk::sim {

/// Min-heap of T ordered by `bool T::Before(const T&) const` (a strict
/// weak order). Deterministic: an identical push/pop sequence yields an
/// identical layout and pop order, which the engine's cross-backend
/// replay contract relies on.
template <typename T, int Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  [[nodiscard]] bool empty() const { return h_.empty(); }
  [[nodiscard]] std::size_t size() const { return h_.size(); }
  [[nodiscard]] const T& Top() const { return h_.front(); }
  /// Mutable top, for moving a payload out right before PopTop.
  [[nodiscard]] T& MutableTop() { return h_.front(); }

  void Push(T value) {
    h_.push_back(std::move(value));
    SiftUp(h_.size() - 1);
  }

  void PopTop() {
    if (h_.size() > 1) {
      h_.front() = std::move(h_.back());
      h_.pop_back();
      SiftDown(0);
    } else {
      h_.pop_back();
    }
  }

  void Reserve(std::size_t n) { h_.reserve(n); }
  void Clear() { h_.clear(); }

 private:
  void SiftUp(std::size_t i) {
    while (i != 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!h_[i].Before(h_[parent])) break;
      std::swap(h_[i], h_[parent]);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= h_.size()) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, h_.size());
      for (std::size_t c = first + 1; c < last; ++c) {
        if (h_[c].Before(h_[best])) best = c;
      }
      if (!h_[best].Before(h_[i])) break;
      std::swap(h_[i], h_[best]);
      i = best;
    }
  }

  std::vector<T> h_;
};

}  // namespace pstk::sim
