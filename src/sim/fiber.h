// Stackful-coroutine execution backend for sim::Engine (Backend::kFibers).
//
// One host thread runs everything: the engine loop lives on the program
// stack and swapcontext()s directly onto the next runnable process's
// fiber stack and back. A dispatch is therefore two user-space context
// switches — no mutex, no condvar, no host scheduler round-trip — which
// is what makes 10^5-process sweeps practical (bench/micro_engine.cc
// records the dispatch-throughput gap vs the thread backend).
//
// Stack pooling: fiber stacks are fixed-size slices carved out of large
// heap slabs (one allocation per ~16 MiB of stacks, so even 10^5 live
// fibers stay far under the kernel's VMA limit, and untouched pages cost
// no RSS). A finished or unwound process returns its slice to the pool
// for the next Spawn. Size with PSTK_SIM_STACK_KB (default 256 KiB,
// doubled under ASan for redzone headroom). There are no guard pages —
// a body that overruns its stack corrupts a neighboring slice — so the
// default is deliberately generous; deep-recursion workloads should
// raise the env var or fall back to Backend::kThreads.
//
// Sanitizer support: under ASan every switch is bracketed with
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber so the
// fake-stack machinery tracks which stack is live (CMake detects the
// header and defines PSTK_HAVE_SANITIZER_FIBER). Under TSan every fiber
// is registered as its own synchronization entity and each swapcontext is
// announced via __tsan_switch_to_fiber (PSTK_HAVE_TSAN_FIBER), which is
// what the sharded engine's TSan CI leg relies on. UBSan needs no
// annotations.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs.h"
#include "sim/engine.h"

namespace pstk::sim {

/// One fixed-size fiber stack, carved out of a StackPool slab.
struct FiberStack {
  char* base = nullptr;
  std::size_t size = 0;
};

/// Slab-backed pool of equally sized fiber stacks. Slabs are plain heap
/// allocations (never memset, so untouched stack pages stay uncommitted);
/// freed stacks are LIFO-reused, which keeps hot dispatch loops on warm
/// pages.
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes);

  FiberStack Acquire();
  void Release(FiberStack stack);

  [[nodiscard]] std::size_t stack_bytes() const { return stack_bytes_; }
  /// Stacks carved fresh out of a slab so far.
  [[nodiscard]] std::uint64_t allocated() const { return allocated_; }
  /// Acquires served from a previously released stack.
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

 private:
  std::size_t stack_bytes_;
  std::size_t stacks_per_slab_;
  std::size_t next_in_slab_;  // == stacks_per_slab_ when a new slab is due
  std::vector<std::unique_ptr<char[]>> slabs_;
  std::vector<FiberStack> free_;
  std::uint64_t allocated_ = 0;
  std::uint64_t reused_ = 0;
};

/// ExecBackend implementation over ucontext fibers. See the file comment.
class FiberBackend final : public ExecBackend {
 public:
  /// `obs` receives the stack-pool counters (sim.fiber.stacks_allocated /
  /// sim.fiber.stacks_reused).
  explicit FiberBackend(obs::Registry& obs);

  void Resume(Engine& engine, Proc& p) override;
  void Suspend(Proc& p) override;
  void Unwind(Engine& engine, Proc& p) override;

  /// PSTK_SIM_STACK_KB (clamped to >= 64 KiB), default 256 KiB — doubled
  /// under ASan.
  [[nodiscard]] static std::size_t DefaultStackBytes();

 private:
  struct FiberExec;

  static void Trampoline();
  void FiberMain(FiberExec& x);

  // makecontext() entry points take no arguments, so the fiber being
  // started is handed to Trampoline through this slot (written immediately
  // before the first switch into the fiber, consumed as its first action;
  // the engine's control flow is single-threaded, so no other switch can
  // intervene). thread_local keeps engines on different host threads
  // independent.
  static thread_local FiberExec* pending_start_;

  // ASan fake-stack bookkeeping (no-ops outside ASan builds).
  void EnterFiberAnnotations(void* fake_stack);
  void ReturnToEngineAnnotations();

  obs::Registry& obs_;
  obs::TagId stacks_allocated_tag_;
  obs::TagId stacks_reused_tag_;
  StackPool pool_;
  ucontext_t engine_ctx_{};
  // Engine-thread stack bounds, captured on the first switch into a fiber;
  // needed to annotate switches back out.
  const void* engine_stack_bottom_ = nullptr;
  std::size_t engine_stack_size_ = 0;
  void* engine_fake_stack_ = nullptr;
  // TSan fiber entity of the engine-side thread, re-captured every Resume
  // (teardown may unwind from a different host thread than the run).
  void* tsan_engine_fiber_ = nullptr;
};

}  // namespace pstk::sim
