#include "sim/fiber.h"

#include <cstdlib>
#include <string_view>

#include "common/check.h"

// ASan needs to be told about every stack switch so its fake-stack
// machinery (use-after-return detection, unwinding) follows the fiber
// instead of believing the engine thread's stack is still live. The
// header is detected by CMake (PSTK_HAVE_SANITIZER_FIBER); the
// annotations compile to nothing unless this TU is actually built with
// AddressSanitizer.
#if defined(PSTK_HAVE_SANITIZER_FIBER)
#if defined(__SANITIZE_ADDRESS__)
#define PSTK_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PSTK_FIBER_ASAN 1
#endif
#endif
#endif

#if defined(PSTK_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

// TSan likewise models each fiber as its own synchronization entity:
// every swapcontext is announced with __tsan_switch_to_fiber so the race
// detector attributes memory accesses to the fiber (not the host thread's
// original stack), which is what lets the sharded engine's TSan CI leg
// run fiber workloads without false positives on stack reuse.
#if defined(PSTK_HAVE_TSAN_FIBER)
#if defined(__SANITIZE_THREAD__)
#define PSTK_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSTK_FIBER_TSAN 1
#endif
#endif
#endif

#if defined(PSTK_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace pstk::sim {

namespace {

// Keep slabs around 16 MiB: big enough that even a 10^5-fiber run needs
// only a few thousand host allocations (VMAs), small enough that a tiny
// simulation does not reserve silly amounts of address space.
constexpr std::size_t kTargetSlabBytes = std::size_t{16} << 20;
constexpr std::size_t kMinStackBytes = std::size_t{64} << 10;

}  // namespace

// ---------------------------------------------------------------------------
// StackPool
// ---------------------------------------------------------------------------

StackPool::StackPool(std::size_t stack_bytes)
    : stack_bytes_(stack_bytes < kMinStackBytes ? kMinStackBytes
                                                : stack_bytes),
      stacks_per_slab_(kTargetSlabBytes / stack_bytes_ > 0
                           ? kTargetSlabBytes / stack_bytes_
                           : 1),
      next_in_slab_(stacks_per_slab_) {}

FiberStack StackPool::Acquire() {
  if (!free_.empty()) {
    const FiberStack stack = free_.back();
    free_.pop_back();
    ++reused_;
    return stack;
  }
  if (next_in_slab_ == stacks_per_slab_) {
    // Plain new[] (not make_unique) on purpose: value-initialization would
    // memset the whole slab and commit every page up front.
    slabs_.emplace_back(new char[stacks_per_slab_ * stack_bytes_]);
    next_in_slab_ = 0;
  }
  FiberStack stack{slabs_.back().get() + next_in_slab_ * stack_bytes_,
                   stack_bytes_};
  ++next_in_slab_;
  ++allocated_;
  return stack;
}

void StackPool::Release(FiberStack stack) {
  if (stack.base != nullptr) free_.push_back(stack);
}

// ---------------------------------------------------------------------------
// FiberBackend
// ---------------------------------------------------------------------------

struct FiberBackend::FiberExec final : ProcExec {
  FiberBackend* backend = nullptr;
  Engine* engine = nullptr;
  Proc* proc = nullptr;
  ucontext_t ctx{};
  FiberStack stack;
  void* fake_stack = nullptr;  // ASan fake-stack handle while parked
  void* tsan_fiber = nullptr;  // TSan fiber entity (owned until death)
  bool started = false;
};

std::size_t FiberBackend::DefaultStackBytes() {
  static const std::size_t bytes = [] {
    std::size_t kb = 256;
#if defined(PSTK_FIBER_ASAN)
    kb *= 2;  // redzones + fake frames need headroom
#endif
    if (const char* env = std::getenv("PSTK_SIM_STACK_KB")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) kb = static_cast<std::size_t>(parsed);
    }
    return kb << 10;
  }();
  return bytes;
}

FiberBackend::FiberBackend(obs::Registry& obs)
    : obs_(obs),
      stacks_allocated_tag_(obs.Intern("sim.fiber.stacks_allocated")),
      stacks_reused_tag_(obs.Intern("sim.fiber.stacks_reused")),
      pool_(DefaultStackBytes()) {}

void FiberBackend::EnterFiberAnnotations(void* fake_stack) {
#if defined(PSTK_FIBER_ASAN)
  // Arriving on a fiber stack, always from the engine: remember the
  // engine-thread stack bounds so switches back out can be annotated.
  const void* from_bottom = nullptr;
  std::size_t from_size = 0;
  __sanitizer_finish_switch_fiber(fake_stack, &from_bottom, &from_size);
  engine_stack_bottom_ = from_bottom;
  engine_stack_size_ = from_size;
#else
  (void)fake_stack;
#endif
}

void FiberBackend::ReturnToEngineAnnotations() {
#if defined(PSTK_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(engine_fake_stack_, nullptr, nullptr);
#endif
}

thread_local FiberBackend::FiberExec* FiberBackend::pending_start_ = nullptr;

void FiberBackend::Trampoline() {
  FiberExec* x = pending_start_;
  pending_start_ = nullptr;
  x->backend->FiberMain(*x);
}

void FiberBackend::FiberMain(FiberExec& x) {
  EnterFiberAnnotations(nullptr);  // first entry: nothing saved yet
  x.engine->ExecuteBody(*x.proc);
  // Dying switch: nullptr fake-stack save tells ASan to free this fiber's
  // fake frames for good.
#if defined(PSTK_FIBER_ASAN)
  __sanitizer_start_switch_fiber(nullptr, engine_stack_bottom_,
                                 engine_stack_size_);
#endif
#if defined(PSTK_FIBER_TSAN)
  __tsan_switch_to_fiber(tsan_engine_fiber_, 0);
#endif
  swapcontext(&x.ctx, &engine_ctx_);
  PSTK_CHECK_MSG(false, "resumed a finished fiber");
}

void FiberBackend::Resume(Engine& engine, Proc& p) {
  if (p.exec == nullptr) p.exec = std::make_unique<FiberExec>();
  auto& x = static_cast<FiberExec&>(*p.exec);
  if (!x.started) {
    x.started = true;
    x.backend = this;
    x.engine = &engine;
    x.proc = &p;
    const std::uint64_t allocated_before = pool_.allocated();
    x.stack = pool_.Acquire();
    obs_.Add(pool_.allocated() > allocated_before ? stacks_allocated_tag_
                                                  : stacks_reused_tag_);
    PSTK_CHECK_MSG(getcontext(&x.ctx) == 0, "getcontext failed");
    x.ctx.uc_stack.ss_sp = x.stack.base;
    x.ctx.uc_stack.ss_size = x.stack.size;
    x.ctx.uc_link = nullptr;  // fibers exit via the explicit dying switch
    makecontext(&x.ctx, &Trampoline, 0);
    pending_start_ = &x;
#if defined(PSTK_FIBER_TSAN)
    x.tsan_fiber = __tsan_create_fiber(0);
#endif
  }
#if defined(PSTK_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&engine_fake_stack_, x.stack.base,
                                 x.stack.size);
#endif
#if defined(PSTK_FIBER_TSAN)
  // The engine side of the switch may be a different host thread than the
  // one that ran this backend last (sharded teardown unwinds on the main
  // thread), so re-capture the engine fiber every Resume.
  tsan_engine_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(x.tsan_fiber, 0);
#endif
  swapcontext(&engine_ctx_, &x.ctx);
  ReturnToEngineAnnotations();
  if (p.state == ProcState::kDone || p.state == ProcState::kKilled) {
    pool_.Release(x.stack);
    x.stack = FiberStack{};
#if defined(PSTK_FIBER_TSAN)
    if (x.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(x.tsan_fiber);
      x.tsan_fiber = nullptr;
    }
#endif
  }
}

void FiberBackend::Suspend(Proc& p) {
  auto& x = static_cast<FiberExec&>(*p.exec);
#if defined(PSTK_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&x.fake_stack, engine_stack_bottom_,
                                 engine_stack_size_);
#endif
#if defined(PSTK_FIBER_TSAN)
  __tsan_switch_to_fiber(x.backend->tsan_engine_fiber_, 0);
#endif
  swapcontext(&x.ctx, &engine_ctx_);
  EnterFiberAnnotations(x.fake_stack);
}

void FiberBackend::Unwind(Engine& engine, Proc& p) {
  auto* x = static_cast<FiberExec*>(p.exec.get());
  if (x == nullptr || !x->started) {
    if (p.state != ProcState::kDone) p.state = ProcState::kKilled;
    return;
  }
  if (p.state == ProcState::kBlocked || p.state == ProcState::kReady) {
    // kill_requested is set: the fiber throws ProcessKilled at its parked
    // suspension point, unwinds, and dies on this one resume.
    Resume(engine, p);
    PSTK_CHECK_MSG(
        p.state == ProcState::kDone || p.state == ProcState::kKilled,
        "process " << p.name << " blocked again while unwinding");
  }
}

}  // namespace pstk::sim
