// Resource timelines: the building block for modeling contended hardware
// (NICs, disks, memory channels) in virtual time.
//
// A Timeline is a FIFO-serialized resource: an operation that becomes ready
// at time `r` and occupies the resource for `d` seconds completes at
// max(r, next_free) + d. For equal-sized concurrent operations this yields
// the same completion times as fair processor sharing, which matches how
// saturated NICs and SSDs behave to first order.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/units.h"

namespace pstk::sim {

class Timeline {
 public:
  Timeline() = default;

  /// Reserve the resource: returns the completion time and advances the
  /// internal free pointer.
  SimTime Acquire(SimTime ready, SimTime duration);

  /// Completion time a hypothetical op would get, without reserving.
  [[nodiscard]] SimTime Peek(SimTime ready, SimTime duration) const;

  [[nodiscard]] SimTime next_free() const { return next_free_; }
  /// Total busy time accumulated (for utilization reports).
  [[nodiscard]] SimTime busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t op_count() const { return ops_; }

  void Reset() { *this = Timeline(); }

 private:
  SimTime next_free_ = 0;
  SimTime busy_ = 0;
  std::uint64_t ops_ = 0;
};

/// A bank of `channels` identical FIFO resources; each operation is served
/// by the earliest-free channel (models multi-lane links, disk queues).
class ChannelBank {
 public:
  explicit ChannelBank(std::size_t channels = 1);

  SimTime Acquire(SimTime ready, SimTime duration);
  [[nodiscard]] std::size_t channels() const { return free_at_.size(); }
  [[nodiscard]] SimTime earliest_free() const { return *free_at_.begin(); }

 private:
  std::multiset<SimTime> free_at_;
};

/// Tracks how many operations overlap a time window; used by the SSD model
/// to detect read contention (paper §III-C: thresholds on parallel readers).
class ConcurrencyWindow {
 public:
  /// Record an operation spanning [start, end); returns the number of
  /// previously-recorded operations it overlaps.
  std::size_t Record(SimTime start, SimTime end);

  [[nodiscard]] std::size_t active_at(SimTime t) const;

 private:
  struct Span {
    SimTime start;
    SimTime end;
  };
  std::vector<Span> spans_;
};

}  // namespace pstk::sim
