// Deterministic discrete-event simulation engine.
//
// Simulated processes are OS threads scheduled *cooperatively*: exactly one
// process (or the engine) runs at any instant, and the engine always
// dispatches the runnable process with the smallest virtual clock (ties
// broken by pid). All cross-process interaction goes through engine
// primitives, so a simulation is a deterministic function of its inputs —
// identical runs replay bit-identically regardless of host scheduling.
//
// Virtual-time rules:
//  * Context::Compute(dt) advances only the caller's clock (no yield needed:
//    other processes cannot observe a process mid-computation).
//  * Blocking primitives park the caller until another process or a
//    scheduled event wakes it with a timestamp; on resume the caller's clock
//    becomes max(own clock, wake time).
//  * Because dispatch is min-clock-first, a process can never observe an
//    interaction from its past (conservative causality).
//
// Instrumentation goes through the engine's obs::Registry (`engine.obs()`):
// dispatch/block/kill activity is published there, higher layers intern
// their own tags against the same registry, and EnableTrace() switches the
// whole bus on. The legacy TraceEvent vector survives as a compat shim that
// re-materializes user Trace() calls from the typed event stream.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/obs.h"
#include "verify/verify.h"

namespace pstk::sim {

using Pid = std::uint32_t;
inline constexpr Pid kNoPid = static_cast<Pid>(-1);

class Engine;
class Context;

/// Body of a simulated process.
using ProcessBody = std::function<void(Context&)>;

/// Thrown inside a process thread when the process is killed by fault
/// injection; unwinds the stack so RAII cleanup runs. Do not catch it.
class ProcessKilled {};

/// Why Engine::Run returned.
struct RunResult {
  Status status;          // OK, or Internal on deadlock / process exception
  SimTime end_time = 0;   // virtual time frontier at completion
  std::size_t completed = 0;
  std::size_t killed = 0;
};

/// Legacy trace record, kept for tests that predate the obs bus. Rebuilt
/// on demand from the typed event stream; new code should read
/// Engine::obs() directly.
struct TraceEvent {
  SimTime time;
  Pid pid;
  std::string tag;
  std::string detail;
};

/// Handle passed to every process body; all simulation services hang off it.
class Context {
 public:
  [[nodiscard]] Pid pid() const;
  [[nodiscard]] const std::string& name() const;
  /// Opaque placement tag (the cluster layer stores a node index here).
  [[nodiscard]] int node() const;

  /// This process's virtual clock, in seconds.
  [[nodiscard]] SimTime now() const;

  /// Advance the local clock by `seconds` of modeled computation.
  void Compute(SimTime seconds);

  /// Park until virtual time `t` (no-op if already past it).
  void SleepUntil(SimTime t);
  void SleepFor(SimTime dt) { SleepUntil(now() + dt); }

  /// Reschedule at the current clock, letting equal-or-earlier-clock
  /// processes run first. Compute() alone never yields.
  void Yield();

  /// Park indefinitely; resumes when some other process or event calls
  /// Engine::Wake(pid, t). Returns the wake timestamp actually applied.
  /// `reason` shows up in deadlock reports.
  SimTime Block(std::string_view reason);

  /// Like Block, but names the process expected to provide the wake-up
  /// (the resource owner): deadlock reports use it as this process's
  /// wait-for edge, enabling cycle extraction.
  SimTime BlockOn(std::string_view reason, Pid holder);

  /// BlockOn with a lazily resolved holder: `holder` runs at report time,
  /// so an owner registered *after* this process parked (e.g. the peer
  /// rank binding its endpoint at the same virtual instant) is still seen.
  SimTime BlockOn(std::string_view reason, std::function<Pid()> holder);

  /// Park until time `t`, but wakeable earlier via Engine::Wake.
  SimTime BlockUntil(SimTime t, std::string_view reason);

  /// Per-process deterministic RNG (derived from the engine seed and pid).
  Rng& rng();

  Engine& engine() { return engine_; }

  /// Record a user trace instant at the current clock (no-op unless
  /// tracing is enabled; strings are interned, not stored per event).
  void Trace(std::string_view tag, std::string_view detail = {});

 private:
  friend class Engine;
  Context(Engine& engine, Pid pid) : engine_(engine), pid_(pid) {}
  Engine& engine_;
  Pid pid_;
};

/// The simulation engine. Not thread-safe in the conventional sense: its
/// methods must only be called from the engine's own control flow — i.e.
/// before Run(), from inside process bodies, or from scheduled events —
/// which by construction is single-threaded.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a process; it becomes runnable at `start` (default: spawner's
  /// clock, or 0 when spawned before Run()).
  Pid Spawn(std::string name, ProcessBody body, int node = 0);
  Pid SpawnAt(SimTime start, std::string name, ProcessBody body, int node = 0);

  /// Run until every process has finished (or a deadlock / exception).
  RunResult Run();

  /// Wake a parked process no earlier than virtual time `t`. If the target
  /// is already scheduled, its wake time is reduced to min(current, t).
  /// Waking a finished process is a no-op.
  void Wake(Pid pid, SimTime t);

  /// Execute `fn` in the engine's control flow at virtual time `t`.
  void ScheduleEvent(SimTime t, std::function<void()> fn);

  /// Kill a process at time `t` (fault injection): its thread unwinds via
  /// ProcessKilled next time it would run.
  void Kill(Pid pid, SimTime t);
  /// Immediate kill, usable from events.
  void KillNow(Pid pid);

  [[nodiscard]] bool IsAlive(Pid pid) const;

  /// Alive processes placed on `node` (used for node-failure injection).
  [[nodiscard]] std::vector<Pid> AlivePidsOnNode(int node) const;

  /// Virtual-time frontier: the largest clock dispatched so far.
  [[nodiscard]] SimTime now() const { return frontier_; }

  [[nodiscard]] std::size_t process_count() const { return procs_.size(); }

  /// The engine's instrumentation bus. Counters are live even with
  /// tracing off; spans/histograms record only after EnableTrace(true).
  [[nodiscard]] obs::Registry& obs() { return obs_; }
  [[nodiscard]] const obs::Registry& obs() const { return obs_; }

  /// Turn the instrumentation bus on (spans, histograms, user traces).
  void EnableTrace(bool on);
  /// Compat shim: user Trace() calls as the legacy string records.
  [[nodiscard]] const std::vector<TraceEvent>& trace() const;

  /// Blocked-process snapshot, for deadlock diagnostics.
  [[nodiscard]] std::string DescribeBlocked() const;

  /// Structured deadlock diagnosis: the wait-for graph (process → wait
  /// reason → holding process), every cycle in it, and per-framework
  /// blame (grouped by process-name prefix). Used by Run() when blocked
  /// processes remain; also reported into verify() when checkers are on.
  [[nodiscard]] std::string DeadlockReport() const;

  /// The engine's runtime-verification hub. Inactive (and free) until a
  /// checker is installed (see verify/checkers.h, bench --verify).
  [[nodiscard]] verify::Hub& verify() { return verify_; }
  [[nodiscard]] const verify::Hub& verify() const { return verify_; }

 private:
  friend class Context;

  enum class State : std::uint8_t {
    kReady,     // scheduled: in ready_ with a wake time
    kRunning,   // currently executing
    kBlocked,   // parked, waiting for Wake
    kDone,      // body returned
    kKilled,    // unwound via ProcessKilled
  };

  struct Proc {
    std::string name;
    int node = 0;
    ProcessBody body;
    std::unique_ptr<Context> context;
    Rng rng;

    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool proc_turn = false;   // true: process may run; false: engine's turn

    State state = State::kReady;
    SimTime clock = 0;        // local virtual time
    SimTime wake_at = 0;      // valid when kReady
    bool kill_requested = false;
    bool thread_started = false;
    std::string wait_reason;
    Pid wait_holder = kNoPid;  // who is expected to wake us (BlockOn)
    std::function<Pid()> wait_holder_fn;  // lazy holder, wins over the pid
    std::exception_ptr error;

    /// The wait-for edge as of now: lazy resolvers see owners registered
    /// after this process parked.
    [[nodiscard]] Pid WaitHolder() const {
      return wait_holder_fn ? wait_holder_fn() : wait_holder;
    }
  };

  // -- called from process threads --------------------------------------
  SimTime ProcBlock(Pid pid, std::string_view reason,
                    Pid holder = kNoPid,
                    std::function<Pid()> holder_fn = nullptr);  // indefinite
  SimTime ProcBlockUntil(Pid pid, SimTime t, std::string_view reason);
  void ProcYieldToEngine(Proc& p);  // park thread, hand control back
  void CheckKilled(Proc& p);

  // -- engine loop -------------------------------------------------------
  void DispatchProc(Pid pid);
  void StartThread(Pid pid);
  void MakeReady(Pid pid, SimTime wake_at);
  void RemoveReady(Pid pid);
  void JoinAll();

  std::uint64_t seed_;
  std::vector<std::unique_ptr<Proc>> procs_;
  // Ready queue ordered by (wake time, pid) — supports decrease-key.
  std::set<std::pair<SimTime, Pid>> ready_;
  // Engine events ordered by time; sequence breaks ties FIFO.
  std::map<std::pair<SimTime, std::uint64_t>, std::function<void()>> events_;
  std::uint64_t event_seq_ = 0;

  std::mutex engine_mu_;
  std::condition_variable engine_cv_;
  bool engine_turn_ = true;
  Pid running_ = kNoPid;

  SimTime frontier_ = 0;
  bool running_loop_ = false;

  obs::Registry obs_;
  verify::Hub verify_;
  struct SimTags {
    obs::TagId dispatches = obs::kNoTag;  // counter: proc dispatches
    obs::TagId events = obs::kNoTag;      // counter: engine events run
    obs::TagId wakes = obs::kNoTag;       // counter: Wake() calls
    obs::TagId spawns = obs::kNoTag;      // counter: processes spawned
    obs::TagId kills = obs::kNoTag;       // counter: fault-injected kills
    obs::TagId run = obs::kNoTag;         // span: process occupies the core
    obs::TagId kill = obs::kNoTag;        // instant: kill delivered
    obs::TagId block = obs::kNoTag;       // instant: process parks
  };
  SimTags tags_;
  mutable std::vector<TraceEvent> trace_compat_;
  std::size_t completed_ = 0;
  std::size_t killed_ = 0;
};

/// Condition-variable analogue in virtual time: processes Wait; another
/// process Notifies with a timestamp; each waiter resumes at
/// max(own clock, timestamp).
class Condition {
 public:
  /// Park the caller until notified. If the caller is killed mid-wait the
  /// unwind removes it from the waiter list, so a later notify cannot
  /// burn its wake-up on a dead process.
  void Wait(Context& ctx, std::string_view reason = "condition") {
    waiters_.push_back(ctx.pid());
    try {
      ctx.Block(reason);
    } catch (...) {
      auto it = std::find(waiters_.begin(), waiters_.end(), ctx.pid());
      if (it != waiters_.end()) waiters_.erase(it);
      throw;
    }
  }

  /// Wake all waiters at time `t`.
  void NotifyAll(Engine& engine, SimTime t) {
    for (Pid pid : waiters_) engine.Wake(pid, t);
    waiters_.clear();
  }

  /// Wake the longest-waiting *live* process at time `t`; returns false if
  /// none. Dead waiters (killed outside Wait's unwind path) are discarded.
  bool NotifyOne(Engine& engine, SimTime t) {
    while (!waiters_.empty()) {
      const Pid pid = waiters_.front();
      waiters_.pop_front();
      if (!engine.IsAlive(pid)) continue;
      engine.Wake(pid, t);
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  std::deque<Pid> waiters_;
};

/// RAII span on the calling process's (node, pid) track, with an optional
/// elapsed-virtual-time histogram. Near-zero cost while tracing is off.
class Scope {
 public:
  Scope(Context& ctx, obs::TagId span_tag, obs::TagId hist_tag = obs::kNoTag)
      : ctx_(ctx), span_(span_tag), hist_(hist_tag),
        active_(ctx.engine().obs().enabled()) {
    if (active_) {
      start_ = ctx_.now();
      ctx_.engine().obs().BeginSpan(ctx_.node(), ctx_.pid(), span_, start_);
    }
  }
  ~Scope() {
    if (active_) {
      auto& reg = ctx_.engine().obs();
      reg.EndSpan(ctx_.node(), ctx_.pid(), span_, ctx_.now());
      if (hist_ != obs::kNoTag) reg.Observe(hist_, ctx_.now() - start_);
    }
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Context& ctx_;
  obs::TagId span_;
  obs::TagId hist_;
  bool active_;
  SimTime start_ = 0;
};

}  // namespace pstk::sim
