// Deterministic discrete-event simulation engine.
//
// Simulated processes are scheduled *cooperatively*: exactly one process
// (or the engine) runs at any instant, and the engine always dispatches
// the runnable process with the smallest virtual clock (ties broken by
// pid). All cross-process interaction goes through engine primitives, so
// a simulation is a deterministic function of its inputs — identical runs
// replay bit-identically regardless of host scheduling.
//
// Execution backends: how control transfers between the engine loop and a
// process body is a pluggable mechanism (`Backend`), chosen per engine:
//
//  * kFibers (default) — every process is a stackful ucontext coroutine;
//    the engine loop swaps directly onto the next runnable process's
//    stack and back (two user-space context switches per dispatch, no
//    locks, pooled stacks). This is what lets sweeps drive 10^5 processes.
//  * kThreads — the legacy one-OS-thread-per-process backend, kept as a
//    fallback (and as a differential oracle): each dispatch is a
//    mutex+condvar baton handoff costing two host scheduler round-trips.
//
// The two backends implement the *same* scheduling contract, so traces,
// RunResults, deadlock reports, and kill/unwind behavior are byte-identical
// across them — tests/sim_test.cc enforces this. Select with the
// constructor argument, `PSTK_SIM_BACKEND=fibers|threads`, or the bench
// flag `--sim-backend=`.
//
// Virtual-time rules:
//  * Context::Compute(dt) advances only the caller's clock (no yield needed:
//    other processes cannot observe a process mid-computation).
//  * Blocking primitives park the caller until another process or a
//    scheduled event wakes it with a timestamp; on resume the caller's clock
//    becomes max(own clock, wake time).
//  * Because dispatch is min-clock-first, a process can never observe an
//    interaction from its past (conservative causality).
//
// Scheduler structures: the ready queue and the event queue are 4-ary
// min-heaps (sched_heap.h) with lazy deletion — decrease-key pushes a
// fresh generation-stamped entry and stale ones are discarded when they
// surface, keeping every mutation O(log n) with contiguous storage.
//
// Sharded execution (conservative PDES): an Engine constructed with
// ShardOptions{shards > 1} partitions its processes across N shards by
// node affinity; each shard owns its own heaps and its own exec backend
// and runs on a dedicated host thread. Shards synchronize in windows: a
// coordinator computes, per shard, the horizon
//     bound(s) = min over s' != s of next_action_time(s') + lookahead(s', s)
// and each shard then processes every action with t < bound(s) in
// parallel. The lookahead comes from the modeled interconnect (see
// net::ShardLookahead / net::Fabric::MinLatency) and must be positive for
// every pair of populated shards; cross-shard sends promise their effect
// lands at least that far in the target's future (checked at send time),
// which is what makes the parallel run replay the single-threaded
// schedule exactly — see DESIGN.md §execution backends for the protocol
// and the determinism argument. Cross-shard messages travel on bounded
// SPSC rings (spsc.h) drained by the coordinator at window boundaries;
// per-shard obs logs merge deterministically afterwards, so traces and
// RunResults are byte-identical at any shard count.
//
// Instrumentation goes through the engine's obs::Registry (`engine.obs()`):
// dispatch/block/kill activity is published there, higher layers intern
// their own tags against the same registry, and EnableTrace() switches the
// whole bus on. The legacy TraceEvent vector survives as a compat shim that
// re-materializes user Trace() calls from the typed event stream (cached;
// rebuilt incrementally as new events arrive).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/obs.h"
#include "sim/sched_heap.h"
#include "sim/spsc.h"
#include "verify/verify.h"

namespace pstk::sim {

using Pid = std::uint32_t;
inline constexpr Pid kNoPid = static_cast<Pid>(-1);

class Engine;
class Context;

/// How simulated processes execute (see the file comment).
enum class Backend : std::uint8_t {
  kFibers,   // stackful coroutines on the engine's own thread (default)
  kThreads,  // one OS thread per process (legacy fallback)
};

/// "fibers" / "threads" — the spelling PSTK_SIM_BACKEND and --sim-backend
/// accept.
[[nodiscard]] std::string_view BackendName(Backend backend);

/// Parse a backend spelling; nullopt for anything unrecognized.
[[nodiscard]] std::optional<Backend> ParseBackendName(std::string_view name);

/// "fibers, threads" — for error messages listing the valid spellings.
[[nodiscard]] std::string_view ValidBackendNames();

/// Backend for engines constructed without an explicit choice: the
/// SetDefaultBackend() override if set, else $PSTK_SIM_BACKEND, else
/// kFibers.
[[nodiscard]] Backend DefaultBackend();

/// Process-wide override of DefaultBackend (bench --sim-backend=...).
void SetDefaultBackend(Backend backend);

/// Body of a simulated process.
using ProcessBody = std::function<void(Context&)>;

/// Thrown inside a simulated process when it is killed by fault injection;
/// unwinds the stack so RAII cleanup runs. Do not catch it.
class ProcessKilled {};

/// Why Engine::Run returned.
struct RunResult {
  Status status;          // OK, or Internal on deadlock / process exception
  SimTime end_time = 0;   // virtual time frontier at completion
  std::size_t completed = 0;
  std::size_t killed = 0;
};

/// Legacy trace record, kept for tests that predate the obs bus. Rebuilt
/// on demand from the typed event stream; new code should read
/// Engine::obs() directly.
struct TraceEvent {
  SimTime time;
  Pid pid;
  std::string tag;
  std::string detail;
};

/// Handle passed to every process body; all simulation services hang off it.
class Context {
 public:
  [[nodiscard]] Pid pid() const;
  [[nodiscard]] const std::string& name() const;
  /// Opaque placement tag (the cluster layer stores a node index here).
  [[nodiscard]] int node() const;

  /// This process's virtual clock, in seconds.
  [[nodiscard]] SimTime now() const;

  /// Advance the local clock by `seconds` of modeled computation.
  void Compute(SimTime seconds);

  /// Park until virtual time `t` (no-op if already past it).
  void SleepUntil(SimTime t);
  void SleepFor(SimTime dt) { SleepUntil(now() + dt); }

  /// Reschedule at the current clock, letting equal-or-earlier-clock
  /// processes run first. Compute() alone never yields.
  void Yield();

  /// Park indefinitely; resumes when some other process or event calls
  /// Engine::Wake(pid, t). Returns the wake timestamp actually applied.
  /// `reason` shows up in deadlock reports.
  SimTime Block(std::string_view reason);

  /// Like Block, but names the process expected to provide the wake-up
  /// (the resource owner): deadlock reports use it as this process's
  /// wait-for edge, enabling cycle extraction.
  SimTime BlockOn(std::string_view reason, Pid holder);

  /// BlockOn with a lazily resolved holder: `holder` runs at report time,
  /// so an owner registered *after* this process parked (e.g. the peer
  /// rank binding its endpoint at the same virtual instant) is still seen.
  SimTime BlockOn(std::string_view reason, std::function<Pid()> holder);

  /// Park until time `t`, but wakeable earlier via Engine::Wake.
  SimTime BlockUntil(SimTime t, std::string_view reason);

  /// Per-process deterministic RNG (derived from the engine seed and pid).
  Rng& rng();

  Engine& engine() { return engine_; }

  /// Record a user trace instant at the current clock (no-op unless
  /// tracing is enabled; strings are interned, not stored per event).
  void Trace(std::string_view tag, std::string_view detail = {});

 private:
  friend class Engine;
  Context(Engine& engine, Pid pid) : engine_(engine), pid_(pid) {}
  Engine& engine_;
  Pid pid_;
};

/// Internal: lifecycle of one simulated process.
enum class ProcState : std::uint8_t {
  kReady,     // scheduled: in the ready heap with a wake time
  kRunning,   // currently executing
  kBlocked,   // parked, waiting for Wake
  kDone,      // body returned
  kKilled,    // unwound via ProcessKilled
};

/// Internal: backend-specific per-process execution state (an OS thread
/// handle or a fiber context + stack). Concrete type lives with the
/// backend; the engine only owns and destroys it.
struct ProcExec {
  virtual ~ProcExec() = default;
};

/// Internal: bookkeeping for one simulated process. At namespace scope
/// only so the exec backends (engine.cc, fiber.cc) can reach it — not
/// part of the public API.
struct Proc {
  std::string name;
  int node = 0;
  ProcessBody body;
  std::unique_ptr<Context> context;
  Rng rng;
  std::unique_ptr<ProcExec> exec;

  ProcState state = ProcState::kReady;
  int shard = 0;                 // owning shard (0 when unsharded)
  SimTime clock = 0;             // local virtual time
  SimTime wake_at = 0;           // valid when kReady
  std::uint64_t ready_stamp = 0; // generation for lazy heap deletion
  bool kill_requested = false;
  std::string wait_reason;
  Pid wait_holder = kNoPid;  // who is expected to wake us (BlockOn)
  std::function<Pid()> wait_holder_fn;  // lazy holder, wins over the pid
  std::exception_ptr error;

  /// The wait-for edge as of now: lazy resolvers see owners registered
  /// after this process parked.
  [[nodiscard]] Pid WaitHolder() const {
    return wait_holder_fn ? wait_holder_fn() : wait_holder;
  }
};

/// Internal: the mechanism that transfers control between the engine loop
/// and process bodies. Exactly one process (or the engine) runs at any
/// instant on either implementation; the backends differ only in *how*
/// the baton moves, never in what order processes run.
class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  /// Engine side: transfer control into `p` (starting its body on the
  /// first call); returns when the process parks, finishes, or unwinds.
  virtual void Resume(Engine& engine, Proc& p) = 0;

  /// Process side (runs on p's stack): park and hand control back to the
  /// engine loop; returns when Resume picks this process again.
  virtual void Suspend(Proc& p) = 0;

  /// Teardown: force a parked process (kill_requested already set by the
  /// caller) to unwind, and reclaim its execution resources. Must be
  /// idempotent and must handle processes that never started.
  virtual void Unwind(Engine& engine, Proc& p) = 0;
};

/// Sharded-execution configuration (see the file comment). The default —
/// one shard — is the single-threaded engine unchanged.
struct ShardOptions {
  /// Host-parallel shards. 1 = classic single-threaded engine.
  int shards = 1;
  /// node -> shard placement. Default: node % shards. Everything a
  /// framework couples tightly (one job's ranks and their mailboxes)
  /// should map to one shard; cross-shard interaction must go through
  /// engine primitives respecting `lookahead`.
  std::function<int(int node)> shard_of_node;
  /// Minimum virtual-time separation L(src, dst) > 0 promised by every
  /// cross-shard interaction; derive it from the interconnect with
  /// net::ShardLookahead. Required when more than one shard is populated.
  std::function<SimTime(int src, int dst)> lookahead;
  /// Slots per cross-shard SPSC ring; overflow spills to a shard-local
  /// vector (counted in sim.shard.channel_spills), never blocks.
  std::size_t channel_capacity = 4096;
};

/// The simulation engine. Not thread-safe in the conventional sense: its
/// methods must only be called from the engine's own control flow — i.e.
/// before Run(), from inside process bodies, or from scheduled events.
/// With one shard that control flow is single-threaded; with N shards it
/// is N worker threads whose interactions are confined to the windowed
/// protocol described in the file comment.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1, Backend backend = DefaultBackend());
  Engine(std::uint64_t seed, Backend backend, ShardOptions shard_options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Backend backend() const { return backend_; }
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }
  /// The shard that owns processes placed on `node`.
  [[nodiscard]] int ShardOfNode(int node) const;

  /// Create a process; it becomes runnable at `start` (default: spawner's
  /// clock, or 0 when spawned before Run()).
  Pid Spawn(std::string name, ProcessBody body, int node = 0);
  Pid SpawnAt(SimTime start, std::string name, ProcessBody body, int node = 0);

  /// Run until every process has finished (or a deadlock / exception).
  RunResult Run();

  /// Wake a parked process no earlier than virtual time `t`. If the target
  /// is already scheduled, its wake time is reduced to min(current, t).
  /// Waking a finished process is a no-op.
  void Wake(Pid pid, SimTime t);

  /// Execute `fn` in the engine's control flow at virtual time `t` (on
  /// the calling shard when sharded).
  void ScheduleEvent(SimTime t, std::function<void()> fn);

  /// Like ScheduleEvent, but the event runs on the shard that owns
  /// `node`, so it may touch that shard's processes (node failures use
  /// this). On an unsharded engine it is plain ScheduleEvent.
  void ScheduleEventFor(int node, SimTime t, std::function<void()> fn);

  /// Kill a process at time `t` (fault injection): it unwinds via
  /// ProcessKilled next time it would run.
  void Kill(Pid pid, SimTime t);
  /// Immediate kill, usable from events.
  void KillNow(Pid pid);

  [[nodiscard]] bool IsAlive(Pid pid) const;

  /// Alive processes placed on `node` (used for node-failure injection).
  [[nodiscard]] std::vector<Pid> AlivePidsOnNode(int node) const;

  /// Virtual-time frontier: the largest clock dispatched so far. On a
  /// shard worker thread this is the *local* shard's frontier (the only
  /// causally meaningful one mid-round); elsewhere the max over shards.
  [[nodiscard]] SimTime now() const;

  [[nodiscard]] std::size_t process_count() const { return procs_.size(); }

  /// The engine's instrumentation bus. Counters are live even with
  /// tracing off; spans/histograms record only after EnableTrace(true).
  [[nodiscard]] obs::Registry& obs() { return obs_; }
  [[nodiscard]] const obs::Registry& obs() const { return obs_; }

  /// Turn the instrumentation bus on (spans, histograms, user traces).
  void EnableTrace(bool on);
  /// Compat shim: user Trace() calls as the legacy string records. Cached;
  /// only events recorded since the previous call are converted.
  [[nodiscard]] const std::vector<TraceEvent>& trace() const;

  /// Blocked-process snapshot, for deadlock diagnostics.
  [[nodiscard]] std::string DescribeBlocked() const;

  /// Structured deadlock diagnosis: the wait-for graph (process → wait
  /// reason → holding process), every cycle in it, and per-framework
  /// blame (grouped by process-name prefix). Used by Run() when blocked
  /// processes remain; also reported into verify() when checkers are on.
  [[nodiscard]] std::string DeadlockReport() const;

  /// The engine's runtime-verification hub. Inactive (and free) until a
  /// checker is installed (see verify/checkers.h, bench --verify).
  [[nodiscard]] verify::Hub& verify() { return verify_; }
  [[nodiscard]] const verify::Hub& verify() const { return verify_; }

  /// Internal (exec backends only): run p's body under the kill/exception
  /// protocol. Executes on p's own stack; updates p.state and the
  /// completed/killed tallies.
  void ExecuteBody(Proc& p);

  /// Internal (exec backends / shard workers only): bind the calling host
  /// thread to `shard` — engine-side thread-locals plus the obs shard slot
  /// — so work done on this thread is attributed to the right shard.
  void BindExecThread(int shard);

 private:
  friend class Context;

  /// Ready-heap entry: (wake time, pid) with a generation stamp for lazy
  /// deletion — an entry is live only while its stamp matches the
  /// process's current ready_stamp.
  struct ReadyEntry {
    SimTime t;
    Pid pid;
    std::uint64_t stamp;
    [[nodiscard]] bool Before(const ReadyEntry& o) const {
      return t != o.t ? t < o.t : pid < o.pid;
    }
  };
  /// Event-heap entry: time with a FIFO sequence tie-break.
  struct EventEntry {
    SimTime t;
    std::uint64_t seq;
    std::function<void()> fn;
    // Internal cross-shard wake delivery: runs like an event but is not a
    // modeled engine event (no sim.events count — the single-threaded
    // oracle has no such event, and counters must match it).
    bool wake_delivery = false;
    [[nodiscard]] bool Before(const EventEntry& o) const {
      return t != o.t ? t < o.t : seq < o.seq;
    }
  };

  /// One cross-shard scheduler message (SPSC ring payload). `src_seq` is
  /// the producer's FIFO stamp: the coordinator applies each window's
  /// messages sorted by (src shard, src_seq), which is deterministic no
  /// matter how host threads interleaved the sends.
  struct ShardMsg {
    enum class Kind : std::uint8_t { kWake, kKill, kEvent };
    Kind kind = Kind::kWake;
    int dst_shard = 0;
    Pid pid = kNoPid;
    SimTime t = 0;
    std::uint64_t src_seq = 0;
    std::function<void()> fn;  // kEvent payload
  };

  /// One shard: its own scheduling heaps, exec backend, clocks, tallies,
  /// and outbound channel. With one shard this is simply *the* engine
  /// state and the coordinator machinery stays dormant.
  struct Shard {
    DaryHeap<ReadyEntry> ready;
    DaryHeap<EventEntry> events;
    std::unique_ptr<ExecBackend> exec;
    Pid running = kNoPid;
    SimTime frontier = 0;    // largest clock dispatched on this shard
    SimTime activation = 0;  // virtual time of the current action
    SimTime bound = 0;       // this window's safe horizon (exclusive)
    std::uint64_t mid_seq = 0;   // FIFO for events scheduled mid-round
    std::uint64_t msg_seq = 0;   // FIFO stamp for outbound messages
    std::size_t completed = 0;
    std::size_t killed = 0;
    struct Fatal {
      SimTime t = 0;
      Pid pid = kNoPid;
      std::exception_ptr error;
    };
    std::optional<Fatal> fatal;  // first process exception this round
    std::unique_ptr<SpscRing<ShardMsg>> outbox;  // producer: this shard
    std::vector<ShardMsg> spill;  // overflow when the ring is full
  };

  // -- called from process stacks ----------------------------------------
  SimTime ProcBlock(Pid pid, std::string_view reason,
                    Pid holder = kNoPid,
                    std::function<Pid()> holder_fn = nullptr);  // indefinite
  SimTime ProcBlockUntil(Pid pid, SimTime t, std::string_view reason);
  void ProcYieldToEngine(Proc& p);  // park, hand control back, re-check kill
  void CheckKilled(Proc& p);

  // -- engine loop -------------------------------------------------------
  void DispatchProc(Shard& s, Pid pid);
  void MakeReady(Pid pid, SimTime wake_at);
  void RemoveReady(Pid pid);
  void PruneReady(Shard& s);  // discard stale lazy-deleted entries at top
  void JoinAll();
  /// Process one action (event or dispatch) below s.bound; false when the
  /// shard has nothing left below its horizon (or hit a process error).
  bool StepShard(Shard& s);
  RunResult RunEpilogue(std::exception_ptr fatal);

  // -- sharded run (shard.cc) --------------------------------------------
  RunResult RunSharded();
  void ShardWorkerMain(int shard);
  void RunShardRound(Shard& s);
  void BuildLookaheadMatrix();
  void DrainChannels();    // coordinator: rings + spills -> heaps
  bool ComputeBounds();    // coordinator: next-action times -> bounds
  void ApplyWake(Pid pid, SimTime t);  // Wake minus the counter bump
  void SendCrossShard(Shard& from, ShardMsg msg);
  [[nodiscard]] SimTime LookaheadOrDie(int src, int dst) const;
  /// Calling thread's shard while inside a parallel round, else -1.
  [[nodiscard]] int CurrentShardIndex() const;
  [[nodiscard]] Shard& CurrentShard();

  std::uint64_t seed_;
  Backend backend_;
  ShardOptions shard_options_;
  std::vector<std::unique_ptr<Shard>> shards_;  // size >= 1, set in ctor
  std::vector<std::unique_ptr<Proc>> procs_;
  std::uint64_t event_seq_ = 0;    // pre-run / single-shard event FIFO
  std::uint64_t routed_seq_ = 0;   // coordinator-applied message FIFO
  std::vector<SimTime> lookahead_;  // shards x shards, built at Run()
  int populated_shards_ = 0;       // shards with procs/events at Run()

  bool running_loop_ = false;
  bool in_parallel_ = false;  // inside a parallel round (workers running)

  // Worker release/park handshake (coordinator <-> shard workers).
  std::mutex round_mu_;
  std::condition_variable round_start_cv_;
  std::condition_variable round_done_cv_;
  std::uint64_t round_ = 0;
  std::size_t round_running_ = 0;
  bool shutdown_workers_ = false;
  std::vector<std::thread> workers_;

  static thread_local const Engine* tls_engine_;
  static thread_local int tls_shard_;

  obs::Registry obs_;
  verify::Hub verify_;
  struct SimTags {
    obs::TagId dispatches = obs::kNoTag;  // counter: proc dispatches
    obs::TagId events = obs::kNoTag;      // counter: engine events run
    obs::TagId wakes = obs::kNoTag;       // counter: Wake() calls
    obs::TagId spawns = obs::kNoTag;      // counter: processes spawned
    obs::TagId kills = obs::kNoTag;       // counter: fault-injected kills
    obs::TagId run = obs::kNoTag;         // span: process occupies the core
    obs::TagId kill = obs::kNoTag;        // instant: kill delivered
    obs::TagId block = obs::kNoTag;       // instant: process parks
    obs::TagId dispatch_ns = obs::kNoTag; // histogram: host ns per dispatch
  };
  SimTags tags_;
  struct ShardTags {
    obs::TagId rounds = obs::kNoTag;   // counter: synchronization windows
    obs::TagId msgs = obs::kNoTag;     // counter: cross-shard messages
    obs::TagId spills = obs::kNoTag;   // counter: ring-full overflows
  };
  ShardTags shard_tags_;
  mutable std::vector<TraceEvent> trace_compat_;
  mutable std::size_t trace_seen_ = 0;  // obs events already converted
};

/// Condition-variable analogue in virtual time: processes Wait; another
/// process Notifies with a timestamp; each waiter resumes at
/// max(own clock, timestamp).
///
/// Waiter bookkeeping is a generation-stamped slot scheme: every Wait
/// enqueues a (pid, ticket) slot with a fresh monotonically increasing
/// ticket. A waiter killed mid-wait discards its slot in O(1) amortized —
/// the ticket goes into a cancelled set and the slot itself is dropped
/// lazily when a notify surfaces it — replacing the old O(n) erase on the
/// kill-unwind path and the O(dead) rescan in NotifyOne.
class Condition {
 public:
  /// Park the caller until notified. If the caller is killed mid-wait the
  /// unwind cancels its slot, so a later notify cannot burn its wake-up
  /// on a dead process.
  void Wait(Context& ctx, std::string_view reason = "condition") {
    const std::uint64_t ticket = next_ticket_++;
    waiters_.push_back(Slot{ctx.pid(), ticket});
    ++live_;
    try {
      ctx.Block(reason);
    } catch (...) {
      cancelled_.insert(ticket);
      --live_;
      throw;
    }
  }

  /// Wake all live waiters at time `t`.
  void NotifyAll(Engine& engine, SimTime t) {
    for (const Slot& slot : waiters_) {
      if (cancelled_.erase(slot.ticket) > 0) continue;
      engine.Wake(slot.pid, t);
    }
    waiters_.clear();
    live_ = 0;
  }

  /// Wake the longest-waiting *live* process at time `t`; returns false if
  /// none. Cancelled slots (killed waiters) are discarded as they surface.
  bool NotifyOne(Engine& engine, SimTime t) {
    while (!waiters_.empty()) {
      const Slot slot = waiters_.front();
      waiters_.pop_front();
      if (cancelled_.erase(slot.ticket) > 0) continue;
      --live_;
      if (!engine.IsAlive(slot.pid)) continue;
      engine.Wake(slot.pid, t);
      return true;
    }
    return false;
  }

  /// Waiters currently parked and not cancelled.
  [[nodiscard]] std::size_t waiter_count() const { return live_; }

 private:
  struct Slot {
    Pid pid;
    std::uint64_t ticket;
  };

  std::deque<Slot> waiters_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_ticket_ = 0;
  std::size_t live_ = 0;
};

/// RAII span on the calling process's (node, pid) track, with an optional
/// elapsed-virtual-time histogram. Near-zero cost while tracing is off.
class Scope {
 public:
  Scope(Context& ctx, obs::TagId span_tag, obs::TagId hist_tag = obs::kNoTag)
      : ctx_(ctx), span_(span_tag), hist_(hist_tag),
        active_(ctx.engine().obs().enabled()) {
    if (active_) {
      start_ = ctx_.now();
      ctx_.engine().obs().BeginSpan(ctx_.node(), ctx_.pid(), span_, start_);
    }
  }
  ~Scope() {
    if (active_) {
      auto& reg = ctx_.engine().obs();
      reg.EndSpan(ctx_.node(), ctx_.pid(), span_, ctx_.now());
      if (hist_ != obs::kNoTag) reg.Observe(hist_, ctx_.now() - start_);
    }
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Context& ctx_;
  obs::TagId span_;
  obs::TagId hist_;
  bool active_;
  SimTime start_ = 0;
};

}  // namespace pstk::sim
