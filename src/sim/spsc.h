// Bounded single-producer / single-consumer ring buffer.
//
// Carries cross-shard scheduler messages in the sharded engine: the
// producer is one shard worker thread, the consumer is the coordinator
// draining between synchronization windows. Lock-free with only
// acquire/release pairs on the two indices — a push is one store, a pop
// one load-compare-store — so the cross-shard send path adds no mutex to
// the dispatch hot loop. Capacity is rounded up to a power of two; a full
// ring rejects the push (the caller spills to a local overflow vector, so
// bounded capacity is backpressure accounting, never deadlock).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pstk::sim {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false when the ring is full.
  bool Push(T value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool Pop(T* out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    *out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Indices are free-running; (head - tail) is the fill level.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace pstk::sim
