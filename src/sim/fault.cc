#include "sim/fault.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pstk::sim {

namespace {

Result<double> ParseNumber(std::string_view text, std::string_view what) {
  if (text.empty()) return InvalidArgument(std::string(what) + " is empty");
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return InvalidArgument("bad " + std::string(what) + " '" + owned + "'");
  }
  return value;
}

/// `mtbf=<s>,horizon=<s>,nodes=<n>[,first=<id>][,down=<s>][,seed=<u64>]`
/// — the CLI spelling of FaultPlan::Exponential.
Result<FaultPlan> ParseExponential(std::string_view body) {
  double mtbf = 0, horizon = 0, down = 0;
  int nodes = 0, first = 0;
  std::uint64_t seed = 1;
  for (const std::string& field : SplitNonEmpty(body, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("bad exp fault field '" + field +
                             "' (want key=value)");
    }
    const std::string key = field.substr(0, eq);
    auto value = ParseNumber(std::string_view(field).substr(eq + 1), key);
    if (!value.ok()) return value.status();
    if (key == "mtbf") {
      mtbf = *value;
    } else if (key == "horizon") {
      horizon = *value;
    } else if (key == "nodes") {
      nodes = static_cast<int>(*value);
    } else if (key == "first") {
      first = static_cast<int>(*value);
    } else if (key == "down") {
      down = *value;
    } else if (key == "seed") {
      seed = static_cast<std::uint64_t>(*value);
    } else {
      return InvalidArgument("unknown exp fault key '" + key + "'");
    }
  }
  if (mtbf <= 0) return InvalidArgument("exp fault needs mtbf > 0");
  if (horizon <= 0) return InvalidArgument("exp fault needs horizon > 0");
  if (nodes <= 0) return InvalidArgument("exp fault needs nodes > 0");
  if (first < 0 || first >= nodes) {
    return InvalidArgument("exp fault first node out of range");
  }
  if (down < 0) return InvalidArgument("exp fault down must be >= 0");
  return FaultPlan::Exponential(mtbf, horizon, nodes, first, down, seed);
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  constexpr std::string_view kExp = "exp:";
  if (spec.rfind(kExp, 0) == 0) {
    return ParseExponential(spec.substr(kExp.size()));
  }
  FaultPlan plan;
  for (const std::string& entry : SplitNonEmpty(spec, ',')) {
    constexpr std::string_view kPrefix = "node:";
    if (entry.rfind(kPrefix, 0) != 0) {
      return InvalidArgument("fault entry '" + entry +
                             "' does not start with 'node:'");
    }
    const std::string_view rest =
        std::string_view(entry).substr(kPrefix.size());
    const auto at = rest.find('@');
    if (at == std::string_view::npos) {
      return InvalidArgument("fault entry '" + entry + "' is missing '@<t>'");
    }
    FaultEvent event;
    auto node = ParseNumber(rest.substr(0, at), "node id");
    if (!node.ok()) return node.status();
    event.node = static_cast<int>(*node);
    std::string_view when = rest.substr(at + 1);
    const auto plus = when.find('+');
    if (plus != std::string_view::npos) {
      auto down = ParseNumber(when.substr(plus + 1), "repair delay");
      if (!down.ok()) return down.status();
      if (*down < 0) return InvalidArgument("repair delay must be >= 0");
      event.down_for = *down;
      when = when.substr(0, plus);
    }
    auto time = ParseNumber(when, "fault time");
    if (!time.ok()) return time.status();
    if (*time < 0) return InvalidArgument("fault time must be >= 0");
    event.time = *time;
    plan.events.push_back(event);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return plan;
}

FaultPlan FaultPlan::Exponential(SimTime mtbf, SimTime horizon, int nodes,
                                 int first_node, SimTime down_for,
                                 std::uint64_t seed) {
  PSTK_CHECK_MSG(mtbf > 0, "MTBF must be positive");
  PSTK_CHECK_MSG(first_node >= 0 && first_node < nodes,
                 "bad first_node " << first_node << " for " << nodes
                                   << " nodes");
  FaultPlan plan;
  Rng rng(seed);
  int victim = first_node;
  SimTime t = 0;
  for (;;) {
    // Inverse-CDF exponential; 1 - Uniform() is in (0, 1] so log is finite.
    t += -mtbf * std::log(1.0 - rng.Uniform());
    if (t >= horizon) break;
    plan.events.push_back(FaultEvent{victim, t, down_for});
    ++victim;
    if (victim >= nodes) victim = first_node;
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) oss << ',';
    oss << "node:" << events[i].node << '@' << events[i].time;
    if (events[i].transient()) oss << '+' << events[i].down_for;
  }
  return oss.str();
}

}  // namespace pstk::sim
