// sim::FaultPlan — a declarative, deterministic schedule of node failures
// (and optional repairs) that can be applied to any cluster run.
//
// The plan is pure data: it can be parsed from the benches' shared
// `--faults=node:<id>@<t>[+<down_for>][,...]` flag, generated from an
// MTBF via `FaultPlan::Exponential`, or built by hand in tests. The
// consumer decides what a fault means: `cluster::Cluster::ApplyFaultPlan`
// schedules disk failure + process kills (and repairs), while
// `ckpt::RestartManager` replays the same plan across restart attempts,
// translating global fault times into per-attempt engine time.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace pstk::sim {

/// One node failure. Times are virtual seconds; for plans replayed across
/// restart attempts they are *global* (measured from first job submission).
struct FaultEvent {
  int node = 0;
  SimTime time = 0;
  /// Repair delay: the node comes back (disk healthy, processes NOT
  /// respawned) at `time + down_for`. Negative = permanent failure.
  SimTime down_for = -1;

  [[nodiscard]] bool transient() const { return down_for >= 0; }
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // kept sorted by time by the factories

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Parse the benches' CLI syntax. Two spellings:
  ///
  ///  * explicit events: `node:<id>@<t>[+<down_for>]`, comma separated.
  ///    "node:3@10,node:5@20+30" fails node 3 at t=10s forever and node 5
  ///    at t=20s for 30s;
  ///  * a whole Poisson process (the CLI form of `Exponential` below):
  ///    `exp:mtbf=<s>,horizon=<s>,nodes=<n>[,first=<id>][,down=<s>]
  ///    [,seed=<u64>]`. Not mixable with explicit `node:` entries.
  static Result<FaultPlan> Parse(std::string_view spec);

  /// Poisson failure process: exponential inter-arrival times with mean
  /// `mtbf` over [0, horizon), targets cycling round-robin through nodes
  /// [first_node, nodes) so a coordinator/driver pinned to node 0 can be
  /// spared. Deterministic for a given seed.
  static FaultPlan Exponential(SimTime mtbf, SimTime horizon, int nodes,
                               int first_node, SimTime down_for,
                               std::uint64_t seed);

  /// Round-trips through Parse (modulo float formatting).
  [[nodiscard]] std::string ToString() const;
};

}  // namespace pstk::sim
