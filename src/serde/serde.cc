#include "serde/serde.h"

// Header-only templates; this translation unit anchors the library and
// instantiates the common codecs once to speed up downstream builds.

namespace pstk::serde {

template struct Codec<std::string>;
template struct Codec<std::int64_t>;
template struct Codec<double>;
template struct Codec<std::pair<std::string, std::int64_t>>;
template struct Codec<std::vector<std::string>>;

}  // namespace pstk::serde
