// Compact binary serialization used wherever data crosses a simulated
// process boundary (Spark shuffle blocks, MapReduce spills, DFS content).
//
// Primitives are written little-endian with varint-encoded lengths. Custom
// types opt in either by specializing pstk::serde::Codec<T> or by being a
// pair/tuple/vector/string composition of supported types.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "buf/bytes.h"
#include "common/check.h"
#include "common/status.h"

namespace pstk::serde {

using Buffer = std::vector<std::uint8_t>;

class Writer {
 public:
  Writer() = default;
  explicit Writer(Buffer buffer) : buffer_(std::move(buffer)) {}

  /// Pre-size the underlying buffer to at least `total` bytes so hot encode
  /// loops append without reallocation. `total` is an absolute capacity, not
  /// a delta (matching std::vector::reserve).
  void Reserve(std::size_t total) { buffer_.reserve(total); }

  void WriteBytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  template <typename T>
  void WriteRaw(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  void WriteVarint(std::uint64_t value) {
    while (value >= 0x80) {
      buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    buffer_.push_back(static_cast<std::uint8_t>(value));
  }

  [[nodiscard]] const Buffer& buffer() const { return buffer_; }
  [[nodiscard]] Buffer TakeBuffer() { return std::move(buffer_); }
  /// Hand the encoded bytes over as an immutable buffer — ownership
  /// transfer, no copy. The writer is left empty.
  [[nodiscard]] buf::Bytes TakeBytes() {
    return buf::Bytes::FromVector(std::move(buffer_));
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  Buffer buffer_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const Buffer& buffer)
      : Reader(buffer.data(), buffer.size()) {}
  /// Zero-copy decode straight out of an immutable buffer. The buffer must
  /// be flat (every serde producer emits flat Bytes) and must outlive the
  /// reader.
  explicit Reader(const buf::Bytes& bytes)
      : Reader(reinterpret_cast<const std::uint8_t*>(bytes.view().data()),
               bytes.size()) {}

  [[nodiscard]] bool AtEnd() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  Status ReadBytes(void* out, std::size_t size) {
    if (size > remaining()) return OutOfRange("serde: buffer underrun");
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return OkStatus();
  }

  template <typename T>
  Result<T> ReadRaw() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    PSTK_RETURN_IF_ERROR(ReadBytes(&value, sizeof(T)));
    return value;
  }

  Result<std::uint64_t> ReadVarint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= size_) return OutOfRange("serde: varint underrun");
      const std::uint8_t byte = data_[pos_++];
      if (shift >= 63 && byte > 1) return OutOfRange("serde: varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Customization point: specialize Codec<T> for user types.
template <typename T, typename Enable = void>
struct Codec;

// --- encoded-size computation (no materialization) --------------------------

[[nodiscard]] inline std::size_t VarintLen(std::uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

/// Exact encoded size for the built-in codecs, computed without writing a
/// single byte. `kEnabled` marks types whose size is computable this way;
/// EncodedSize() falls back to a dry encode for everything else, and
/// Codec<std::vector<T>>::Encode uses it to pre-size the output buffer.
template <typename T, typename Enable = void>
struct SizeOf {
  static constexpr bool kEnabled = false;
  static std::size_t Of(const T&) { return 0; }
};

template <typename T>
struct SizeOf<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static constexpr bool kEnabled = true;
  static std::size_t Of(const T&) { return sizeof(T); }
};

template <>
struct SizeOf<std::string> {
  static constexpr bool kEnabled = true;
  static std::size_t Of(const std::string& s) {
    return VarintLen(s.size()) + s.size();
  }
};

template <typename A, typename B>
struct SizeOf<std::pair<A, B>,
              std::enable_if_t<SizeOf<A>::kEnabled && SizeOf<B>::kEnabled>> {
  static constexpr bool kEnabled = true;
  static std::size_t Of(const std::pair<A, B>& p) {
    return SizeOf<A>::Of(p.first) + SizeOf<B>::Of(p.second);
  }
};

template <typename... Ts>
struct SizeOf<std::tuple<Ts...>,
              std::enable_if_t<(SizeOf<Ts>::kEnabled && ...)>> {
  static constexpr bool kEnabled = true;
  static std::size_t Of(const std::tuple<Ts...>& t) {
    return std::apply(
        [](const Ts&... elems) {
          return (std::size_t{0} + ... + SizeOf<Ts>::Of(elems));
        },
        t);
  }
};

template <typename T>
struct SizeOf<std::vector<T>, std::enable_if_t<SizeOf<T>::kEnabled>> {
  static constexpr bool kEnabled = true;
  static std::size_t Of(const std::vector<T>& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      return VarintLen(v.size()) + v.size() * sizeof(T);
    } else {
      std::size_t total = VarintLen(v.size());
      for (const T& elem : v) total += SizeOf<T>::Of(elem);
      return total;
    }
  }
};

// --- arithmetic types -------------------------------------------------------

template <typename T>
struct Codec<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static void Encode(Writer& w, const T& value) { w.WriteRaw(value); }
  static Status Decode(Reader& r, T& out) {
    auto res = r.ReadRaw<T>();
    if (!res.ok()) return res.status();
    out = res.value();
    return OkStatus();
  }
};

// --- std::string ------------------------------------------------------------

template <>
struct Codec<std::string> {
  static void Encode(Writer& w, const std::string& value) {
    w.Reserve(w.size() + VarintLen(value.size()) + value.size());
    w.WriteVarint(value.size());
    w.WriteBytes(value.data(), value.size());
  }
  static Status Decode(Reader& r, std::string& out) {
    auto len = r.ReadVarint();
    if (!len.ok()) return len.status();
    if (len.value() > r.remaining()) return OutOfRange("serde: bad string len");
    out.resize(len.value());
    return r.ReadBytes(out.data(), out.size());
  }
};

// --- std::pair --------------------------------------------------------------

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void Encode(Writer& w, const std::pair<A, B>& value) {
    Codec<A>::Encode(w, value.first);
    Codec<B>::Encode(w, value.second);
  }
  static Status Decode(Reader& r, std::pair<A, B>& out) {
    PSTK_RETURN_IF_ERROR(Codec<A>::Decode(r, out.first));
    return Codec<B>::Decode(r, out.second);
  }
};

// --- std::tuple -------------------------------------------------------------

template <typename... Ts>
struct Codec<std::tuple<Ts...>> {
  static void Encode(Writer& w, const std::tuple<Ts...>& value) {
    std::apply(
        [&](const Ts&... elems) {
          (Codec<Ts>::Encode(w, elems), ...);
        },
        value);
  }
  static Status Decode(Reader& r, std::tuple<Ts...>& out) {
    Status status;
    std::apply(
        [&](Ts&... elems) {
          ((status.ok() ? (status = Codec<Ts>::Decode(r, elems), 0) : 0), ...);
        },
        out);
    return status;
  }
};

// --- std::vector ------------------------------------------------------------

template <typename T>
struct Codec<std::vector<T>> {
  static void Encode(Writer& w, const std::vector<T>& value) {
    if constexpr (SizeOf<std::vector<T>>::kEnabled) {
      w.Reserve(w.size() + SizeOf<std::vector<T>>::Of(value));
    }
    w.WriteVarint(value.size());
    for (const T& elem : value) Codec<T>::Encode(w, elem);
  }
  static Status Decode(Reader& r, std::vector<T>& out) {
    auto len = r.ReadVarint();
    if (!len.ok()) return len.status();
    out.clear();
    out.reserve(static_cast<std::size_t>(len.value()));
    for (std::uint64_t i = 0; i < len.value(); ++i) {
      T elem{};
      PSTK_RETURN_IF_ERROR(Codec<T>::Decode(r, elem));
      out.push_back(std::move(elem));
    }
    return OkStatus();
  }
};

// --- convenience free functions ----------------------------------------------

template <typename T>
void Encode(Writer& w, const T& value) {
  Codec<T>::Encode(w, value);
}

template <typename T>
Buffer EncodeToBuffer(const T& value) {
  Writer w;
  Codec<T>::Encode(w, value);
  return w.TakeBuffer();
}

template <typename T>
Status Decode(Reader& r, T& out) {
  return Codec<T>::Decode(r, out);
}

template <typename T>
Result<T> DecodeFromBuffer(const Buffer& buffer) {
  Reader r(buffer);
  T out{};
  PSTK_RETURN_IF_ERROR(Codec<T>::Decode(r, out));
  if (!r.AtEnd()) return OutOfRange("serde: trailing bytes");
  return out;
}

/// Encode into an immutable buffer (ownership handover, no copy).
template <typename T>
buf::Bytes EncodeToBytes(const T& value) {
  Writer w;
  Codec<T>::Encode(w, value);
  return w.TakeBytes();
}

/// Decode straight out of an immutable (flat) buffer — no copy.
template <typename T>
Result<T> DecodeFromBytes(const buf::Bytes& bytes) {
  Reader r(bytes);
  T out{};
  PSTK_RETURN_IF_ERROR(Codec<T>::Decode(r, out));
  if (!r.AtEnd()) return OutOfRange("serde: trailing bytes");
  return out;
}

/// Serialized size without materializing the buffer. For the built-in codecs
/// this is a pure size computation (SizeOf<T>); custom Codec specializations
/// fall back to a dry encode. Used by cost models and cache accounting.
template <typename T>
std::size_t EncodedSize(const T& value) {
  if constexpr (SizeOf<T>::kEnabled) {
    return SizeOf<T>::Of(value);
  } else {
    Writer w;
    Codec<T>::Encode(w, value);
    return w.size();
  }
}

}  // namespace pstk::serde
