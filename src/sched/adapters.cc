#include "sched/adapters.h"

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace pstk::sched {

namespace {

/// Kill every process on the job's (exclusively owned) nodes. Gang
/// placement is whole-node, so nothing else can be running there.
void KillNodes(cluster::Cluster& cluster, const std::vector<int>& placement) {
  sim::Engine& engine = cluster.engine();
  const std::set<int> nodes(placement.begin(), placement.end());
  for (int node : nodes) {
    for (sim::Pid pid : engine.AlivePidsOnNode(node)) {
      engine.KillNow(pid);
    }
  }
}

/// Snapshot store + all attempts' runtime objects, kept alive for the
/// launcher's lifetime.
template <typename WorldT>
struct GangState {
  std::unique_ptr<ckpt::SnapshotStore> store;
  std::vector<std::shared_ptr<WorldT>> attempts;
};

/// Per-proc bookkeeping for elastic jobs: which proc ids are alive and
/// where, so shrink can free the most recently added one.
struct ElasticState {
  std::vector<std::pair<int, int>> live;  // (proc id, node), oldest first
};

}  // namespace

Launcher MakeMpiLauncher(Scheduler& sched, MpiCkptBody body,
                         mpi::MpiOptions options, ckpt::CkptPolicy policy) {
  auto state = std::make_shared<GangState<mpi::World>>();
  cluster::Cluster& cluster = sched.cluster();
  return [&sched, &cluster, state, body = std::move(body), options,
          policy](const Launch& launch) -> JobHooks {
    const int nranks = static_cast<int>(launch.placement.size());
    if (state->store == nullptr) {
      state->store = std::make_unique<ckpt::SnapshotStore>(nranks);
    }
    mpi::MpiOptions opts = options;
    opts.placement = launch.placement;
    opts.name = "mpi-j" + std::to_string(launch.job_id) + "a" +
                std::to_string(launch.attempt);
    auto world = std::make_shared<mpi::World>(cluster, nranks,
                                              /*ranks_per_node=*/1, opts);
    auto coordinator = std::make_shared<ckpt::CheckpointCoordinator>(
        cluster, *state->store, policy);
    world->OnAllRanksDone(
        [&sched, job_id = launch.job_id](SimTime) { sched.OnJobDone(job_id); });
    world->SpawnRanks([body, coordinator](mpi::Comm& comm) {
      body(comm, *coordinator);
    });
    state->attempts.push_back(world);

    JobHooks hooks;
    hooks.kill = [&cluster, placement = launch.placement] {
      KillNodes(cluster, placement);
    };
    return hooks;
  };
}

Launcher MakeShmemLauncher(Scheduler& sched, ShmemCkptBody body,
                           shmem::ShmemOptions options,
                           ckpt::CkptPolicy policy) {
  auto state = std::make_shared<GangState<shmem::ShmemWorld>>();
  cluster::Cluster& cluster = sched.cluster();
  return [&sched, &cluster, state, body = std::move(body), options,
          policy](const Launch& launch) -> JobHooks {
    const int npes = static_cast<int>(launch.placement.size());
    if (state->store == nullptr) {
      state->store = std::make_unique<ckpt::SnapshotStore>(npes);
    }
    shmem::ShmemOptions opts = options;
    opts.placement = launch.placement;
    opts.name = "shmem-j" + std::to_string(launch.job_id) + "a" +
                std::to_string(launch.attempt);
    auto world = std::make_shared<shmem::ShmemWorld>(cluster, npes,
                                                     /*pes_per_node=*/1, opts);
    auto coordinator = std::make_shared<ckpt::CheckpointCoordinator>(
        cluster, *state->store, policy);
    world->OnAllPesDone(
        [&sched, job_id = launch.job_id](SimTime) { sched.OnJobDone(job_id); });
    world->SpawnPes([body, coordinator](shmem::Pe& pe) {
      body(pe, *coordinator);
    });
    state->attempts.push_back(world);

    JobHooks hooks;
    hooks.kill = [&cluster, placement = launch.placement] {
      KillNodes(cluster, placement);
    };
    return hooks;
  };
}

Launcher MakeSparkLauncher(Scheduler& sched, dfs::MiniDfs* dfs,
                           spark::MiniSpark::DriverBody body,
                           spark::SparkOptions options) {
  cluster::Cluster& cluster = sched.cluster();
  return [&sched, &cluster, dfs, body = std::move(body),
          options](const Launch& launch) -> JobHooks {
    spark::SparkOptions opts = options;
    opts.executor_nodes = launch.placement;
    opts.driver_node = launch.placement.front();
    opts.max_executors = launch.max_procs;
    opts.name = "spark-j" + std::to_string(launch.job_id);
    auto app = std::make_shared<spark::MiniSpark>(cluster, dfs, opts);
    auto state = std::make_shared<ElasticState>();
    for (int e = 0; e < static_cast<int>(launch.placement.size()); ++e) {
      state->live.emplace_back(e, launch.placement[e]);
    }
    app->Submit(body, [&sched, app, job_id = launch.job_id](
                          Result<spark::AppResult>) {
      sched.OnJobDone(job_id);
    });

    JobHooks hooks;
    hooks.grow = [app, state](int node) {
      state->live.emplace_back(app->AddExecutor(node), node);
      return true;
    };
    hooks.shrink = [app, state]() -> int {
      if (state->live.empty()) return -1;
      const auto [id, node] = state->live.back();
      state->live.pop_back();
      app->RemoveExecutor(id);
      return node;
    };
    return hooks;
  };
}

Launcher MakeMrLauncher(Scheduler& sched, mr::MrEngine& engine, MrJob job) {
  return [&sched, &engine, job = std::move(job)](
             const Launch& launch) -> JobHooks {
    mr::JobConf conf = job.conf;
    conf.worker_nodes = launch.placement;
    conf.coordinator_node = launch.placement.front();
    conf.name = conf.name + "-j" + std::to_string(launch.job_id);
    auto state = std::make_shared<ElasticState>();
    for (int w = 0; w < static_cast<int>(launch.placement.size()); ++w) {
      state->live.emplace_back(w, launch.placement[w]);
    }
    mr::MrEngine::JobHandle handle = engine.Submit(
        conf, job.map, job.reduce, job.combine,
        [&sched, job_id = launch.job_id](Result<mr::JobResult>) {
          sched.OnJobDone(job_id);
        });

    JobHooks hooks;
    hooks.grow = [&engine, handle, state](int node) {
      if (mr::MrEngine::JobFinished(handle)) return false;
      state->live.emplace_back(engine.AddWorker(handle, node), node);
      return true;
    };
    hooks.shrink = [&engine, handle, state]() -> int {
      if (state->live.empty()) return -1;
      const auto [id, node] = state->live.back();
      state->live.pop_back();
      engine.KillWorker(handle, id);
      return node;
    };
    return hooks;
  };
}

}  // namespace pstk::sched
