// Launch adapters: bridge pstk::sched's placement grants to the four
// framework runtimes.
//
// Each Make*Launcher returns a sched::Launcher. The scheduler calls it with
// the granted placement; the adapter builds the runtime with that placement
// (MpiOptions/ShmemOptions::placement, SparkOptions::executor_nodes,
// JobConf::worker_nodes), wires completion back to Scheduler::OnJobDone,
// and returns the paradigm's control hooks:
//
//  * gang (MPI/SHMEM): `kill` stops every process on the job's exclusively
//    held nodes. Each attempt shares one ckpt::SnapshotStore, so a
//    preempted job's next attempt restores from the latest committed epoch
//    instead of restarting from scratch — checkpoint-preempt-requeue.
//  * elastic (Spark/MR): `grow` adds an executor/worker on a node, `shrink`
//    kills the most recently added one (the runtime's lineage/task-retry
//    machinery recomputes whatever it lost).
//
// Runtime objects from earlier attempts are kept alive until the launcher
// is destroyed: killed processes may still be referenced by engine-side
// teardown, and snapshots must outlive the attempt that wrote them.
#pragma once

#include <functional>

#include "ckpt/ckpt.h"
#include "cluster/cluster.h"
#include "dfs/dfs.h"
#include "mpi/mpi.h"
#include "mr/mr.h"
#include "sched/sched.h"
#include "shmem/shmem.h"
#include "spark/spark.h"

namespace pstk::sched {

/// Gang MPI job. `body(comm, ckpt)` runs on every rank each attempt; call
/// `ckpt.Restore(...)` first and `ckpt.Checkpoint(...)` at collective
/// boundaries to make preemption cheap (policy.interval <= 0 disables
/// snapshots and preemption degrades to restart-from-scratch).
using MpiCkptBody =
    std::function<void(mpi::Comm&, ckpt::CheckpointCoordinator&)>;
Launcher MakeMpiLauncher(Scheduler& sched, MpiCkptBody body,
                         mpi::MpiOptions options = {},
                         ckpt::CkptPolicy policy = {});

/// Gang SHMEM job; same checkpoint contract as MPI.
using ShmemCkptBody =
    std::function<void(shmem::Pe&, ckpt::CheckpointCoordinator&)>;
Launcher MakeShmemLauncher(Scheduler& sched, ShmemCkptBody body,
                           shmem::ShmemOptions options = {},
                           ckpt::CkptPolicy policy = {});

/// Elastic Spark app: one MiniSpark per launch, executors on the granted
/// cores, driver co-located with the first grant (not separately charged).
/// `dfs` may be null for local-file apps.
Launcher MakeSparkLauncher(Scheduler& sched, dfs::MiniDfs* dfs,
                           spark::MiniSpark::DriverBody body,
                           spark::SparkOptions options = {});

/// Elastic MapReduce job on a shared MrEngine; workers on the granted
/// cores, coordinator co-located with the first grant.
struct MrJob {
  mr::JobConf conf;
  mr::MapFn map;
  mr::ReduceFn reduce;
  std::optional<mr::ReduceFn> combine;
};
Launcher MakeMrLauncher(Scheduler& sched, mr::MrEngine& engine, MrJob job);

}  // namespace pstk::sched
