// Job arrival processes for pstk::sched: seeded Poisson streams and
// trace-file replays, materialized as engine events.
//
// Determinism stance: a Poisson spec with a fixed seed always expands to
// the same arrival-time vector (xoshiro-driven exponential gaps, no host
// entropy), so a whole service-bench run is a pure function of its flags —
// byte-identical across repeats and engine shard counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/engine.h"

namespace pstk::sched {

struct ArrivalSpec {
  enum class Kind { kPoisson, kTrace };
  Kind kind = Kind::kPoisson;
  /// Poisson: offered load in jobs per simulated second.
  double rate = 1.0;
  /// Poisson: number of arrivals to generate.
  int count = 0;
  std::uint64_t seed = 1;
  /// Trace: explicit arrival times (seconds), sorted ascending.
  std::vector<SimTime> trace;

  /// Spellings:
  ///   poisson:rate=<jobs/s>,n=<count>[,seed=<u64>]
  ///   trace:<file>            (one arrival time in seconds per line;
  ///                            blank lines and #-comments skipped)
  static Result<ArrivalSpec> Parse(const std::string& text);

  /// Materialize the arrival times (sorted ascending).
  [[nodiscard]] std::vector<SimTime> Times() const;
};

/// Schedule one engine event per arrival; `on_arrival(index, t)` fires at
/// virtual time t (submitting a job there is the expected use).
void ScheduleArrivals(sim::Engine& engine, const ArrivalSpec& spec,
                      std::function<void(int index, SimTime t)> on_arrival);

}  // namespace pstk::sched
