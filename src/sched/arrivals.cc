#include "sched/arrivals.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace pstk::sched {

namespace {

Result<ArrivalSpec> ParsePoisson(const std::string& body) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kPoisson;
  std::stringstream ss(body);
  std::string field;
  while (std::getline(ss, field, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
      return InvalidArgument("bad arrival field '" + field +
                             "' (want key=value)");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    try {
      if (key == "rate") {
        spec.rate = std::stod(value);
      } else if (key == "n") {
        spec.count = std::stoi(value);
      } else if (key == "seed") {
        spec.seed = std::stoull(value);
      } else {
        return InvalidArgument("unknown arrival key '" + key + "'");
      }
    } catch (const std::exception&) {
      return InvalidArgument("bad arrival value '" + value + "' for " + key);
    }
  }
  if (spec.rate <= 0) return InvalidArgument("arrival rate must be > 0");
  if (spec.count <= 0) return InvalidArgument("arrival count must be > 0");
  return spec;
}

Result<ArrivalSpec> ParseTrace(const std::string& path) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kTrace;
  std::ifstream in(path);
  if (!in) return NotFound("arrival trace file '" + path + "' not readable");
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    try {
      spec.trace.push_back(std::stod(line.substr(start)));
    } catch (const std::exception&) {
      return InvalidArgument("bad arrival time '" + line + "' in " + path);
    }
    if (spec.trace.back() < 0) {
      return InvalidArgument("negative arrival time in " + path);
    }
  }
  if (spec.trace.empty()) {
    return InvalidArgument("arrival trace '" + path + "' has no events");
  }
  std::sort(spec.trace.begin(), spec.trace.end());
  return spec;
}

}  // namespace

Result<ArrivalSpec> ArrivalSpec::Parse(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    return InvalidArgument("bad --arrivals= spec '" + text +
                           "' (want poisson:... or trace:<file>)");
  }
  const std::string kind = text.substr(0, colon);
  const std::string body = text.substr(colon + 1);
  if (kind == "poisson") return ParsePoisson(body);
  if (kind == "trace") return ParseTrace(body);
  return InvalidArgument("unknown arrival kind '" + kind + "'");
}

std::vector<SimTime> ArrivalSpec::Times() const {
  if (kind == Kind::kTrace) return trace;
  std::vector<SimTime> times;
  times.reserve(static_cast<std::size_t>(count));
  Rng rng(seed);
  SimTime t = 0;
  for (int i = 0; i < count; ++i) {
    // Exponential inter-arrival gap; 1-U keeps log() off exact zero.
    t += -std::log(1.0 - rng.Uniform()) / rate;
    times.push_back(t);
  }
  return times;
}

void ScheduleArrivals(sim::Engine& engine, const ArrivalSpec& spec,
                      std::function<void(int index, SimTime t)> on_arrival) {
  const std::vector<SimTime> times = spec.Times();
  auto shared = std::make_shared<std::function<void(int, SimTime)>>(
      std::move(on_arrival));
  for (int i = 0; i < static_cast<int>(times.size()); ++i) {
    const SimTime t = times[static_cast<std::size_t>(i)];
    engine.ScheduleEvent(t, [shared, i, t] { (*shared)(i, t); });
  }
}

}  // namespace pstk::sched
