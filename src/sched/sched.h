// pstk::sched — a cluster-level job scheduler between cluster::Cluster and
// the framework runtimes.
//
// The paper's batch experiments run one job on an idle cluster; the real
// divide between the HPC and Big Data stacks is resource management (Jha et
// al.): gang-scheduled rigid jobs vs elastic task pools. This module makes
// that divide measurable in one codebase:
//
//  * gang placement (MPI/SHMEM): all-or-nothing *whole-node* allocation —
//    the job starts only when every node it needs is entirely free, and it
//    owns those nodes exclusively until it finishes or is preempted;
//  * elastic placement (Spark/MR): per-core allocation — the job starts as
//    soon as `min_procs` cores are free anywhere, and the scheduler grows
//    it toward `procs` (executors/containers added mid-run) or shrinks it
//    under pressure (lineage/task-retry absorbs the loss);
//  * fair-share queues: the next job to place comes from the queue with the
//    least accrued core-seconds per unit weight (FIFO within a queue);
//  * EASY backfilling: jobs behind a blocked queue head may jump ahead iff
//    their user-estimated runtime finishes before the head's shadow time;
//  * priority preemption composing with src/ckpt: a blocked high-priority
//    job evicts lower-priority work — gang victims are killed and requeued
//    (their next attempt restores from the latest committed snapshot
//    epoch), elastic victims are shrunk toward min_procs.
//
// The scheduler is a passive, event-driven object: Submit and the OnJob*
// callbacks run a synchronous scheduling pass and return — nothing in the
// submit path may block on simulated time (enforced by the pstk-lint rule
// `sched-blocking-in-submit-path`). Mid-run process spawns are legal only
// on a single engine shard, so service workloads pin every node to shard 0
// (see DESIGN.md §sched for the determinism stance).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/units.h"
#include "obs/obs.h"
#include "sim/engine.h"

namespace pstk::sched {

enum class Paradigm { kMpi, kShmem, kSpark, kMr };

[[nodiscard]] const char* ParadigmName(Paradigm paradigm);
/// Gang paradigms launch all procs at once on exclusively-held nodes.
[[nodiscard]] inline bool IsGang(Paradigm paradigm) {
  return paradigm == Paradigm::kMpi || paradigm == Paradigm::kShmem;
}

/// What the scheduler granted for one launch attempt.
struct Launch {
  int job_id = -1;
  /// 0 on the first launch; preempted gang jobs relaunch with attempt+1
  /// (their adapter restores from the latest snapshot epoch).
  int attempt = 0;
  /// proc -> node. Gang: exactly spec.procs entries. Elastic: the initial
  /// grant, between spec.min_procs and spec.procs entries.
  std::vector<int> placement;
  /// spec.procs — the ceiling the scheduler may grow an elastic job to.
  int max_procs = 0;
};

/// Control surface an adapter returns from its launcher. Any hook may be
/// null when the operation does not apply to the paradigm.
struct JobHooks {
  /// Elastic: add one proc on `node`; false = decline (no headroom).
  std::function<bool(int node)> grow;
  /// Elastic: remove one proc; returns the node it freed, or -1.
  std::function<int()> shrink;
  /// Gang: hard-stop every process of the job (preemption). The next
  /// attempt is the adapter's chance to restore from checkpoints.
  std::function<void()> kill;
};

using Launcher = std::function<JobHooks(const Launch&)>;

struct JobSpec {
  std::string name = "job";
  std::string queue = "default";
  Paradigm paradigm = Paradigm::kMpi;
  /// Gang: rank/PE count. Elastic: target executor/container count.
  int procs = 1;
  /// Elastic floor: start once this many cores are free. Gang ignores it
  /// (all-or-nothing).
  int min_procs = 1;
  /// Packing density: procs per node (gang: ranks per node; elastic: the
  /// per-node executor cap).
  int procs_per_node = 8;
  /// User-estimated runtime; backfilling trusts it for shadow times.
  SimTime est_runtime = Seconds(60);
  /// Higher priority may preempt lower. Equal priorities never preempt.
  int priority = 0;
  Launcher launch;
};

enum class JobState { kPending, kRunning, kDone };

/// Read-only per-job record (also the scheduler's internal bookkeeping).
struct JobInfo {
  int id = -1;
  JobSpec spec;
  JobState state = JobState::kPending;
  SimTime submit_time = 0;
  SimTime first_start = -1;  // -1 until the job first ran
  SimTime last_start = -1;   // start of the current/most recent attempt
  SimTime end_time = -1;
  int attempt = 0;
  int preemptions = 0;
  bool backfilled = false;
  /// Current allocation: node -> reserved cores.
  std::map<int, int> alloc;
  int procs_running = 0;  // elastic: current proc count
};

/// Pending-job queues with fair-share ordering. Fair share picks the
/// nonempty queue with the least accrued usage per unit weight
/// (core-seconds / weight, ties broken by queue name); within a queue,
/// jobs run FIFO except that preempted jobs re-enter at the front.
class JobQueue {
 public:
  /// Enqueue a pending job. `front` = requeue after preemption.
  void Submit(int job_id, const std::string& queue, bool front = false);
  void Remove(int job_id, const std::string& queue);
  [[nodiscard]] bool Empty() const;
  [[nodiscard]] std::size_t Pending() const;

  void SetWeight(const std::string& queue, double weight);
  void AddUsage(const std::string& queue, double core_seconds);
  [[nodiscard]] double Share(const std::string& queue) const;

  /// Head job of the fair-share-ranked queue; nullopt when all empty.
  [[nodiscard]] std::optional<int> FairShareHead() const;
  /// Every pending job, queues ranked by fair share, FIFO within each —
  /// the backfill scan order.
  [[nodiscard]] std::vector<int> InScanOrder() const;

 private:
  struct Entry {
    std::deque<int> jobs;
    double weight = 1.0;
    double usage = 0;  // accrued core-seconds
  };
  /// Queue names ranked by share (usage/weight), ties by name.
  [[nodiscard]] std::vector<const std::map<std::string, Entry>::value_type*>
  Ranked() const;
  std::map<std::string, Entry> queues_;
};

struct SchedOptions {
  bool backfill = true;
  bool preemption = true;
  /// Fair-share weight per queue (unlisted queues get 1.0).
  std::map<std::string, double> queue_weights;
};

class Scheduler {
 public:
  Scheduler(cluster::Cluster& cluster, SchedOptions options = {});

  /// Submit a job and run a scheduling pass. Callable before the engine
  /// runs or from inside events/processes (arrivals are engine events).
  /// Must never block on simulated time.
  int Submit(JobSpec spec);

  /// Adapters call this when their job finishes. The release + follow-up
  /// scheduling pass runs in a fresh engine event, so runtime teardown
  /// code never re-enters the scheduler.
  void OnJobDone(int job_id);

  [[nodiscard]] const JobInfo& job(int job_id) const;
  [[nodiscard]] int jobs_submitted() const {
    return static_cast<int>(jobs_.size());
  }
  [[nodiscard]] int jobs_done() const { return jobs_done_; }
  [[nodiscard]] int jobs_running() const { return jobs_running_; }
  [[nodiscard]] int preemptions() const { return preemptions_; }
  [[nodiscard]] int backfills() const { return backfills_; }
  /// Core-seconds of reserved capacity accrued so far (up to `now`).
  [[nodiscard]] double busy_core_seconds();
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }

 private:
  void SchedulePass();
  [[nodiscard]] bool TryStart(JobInfo& job, bool backfill);
  /// Place against a hypothetical free-core vector (ShadowTime simulates
  /// future frees through the same code path placements use).
  [[nodiscard]] bool TryPlaceGang(const JobInfo& job,
                                  const std::vector<int>& free,
                                  std::vector<int>* placement) const;
  [[nodiscard]] bool TryPlaceElastic(const JobInfo& job,
                                     const std::vector<int>& free,
                                     std::vector<int>* placement) const;
  [[nodiscard]] std::vector<int> FreeCoresNow() const;
  [[nodiscard]] bool CanPlace(const JobInfo& job) const;
  void StartJob(JobInfo& job, std::vector<int> placement, bool backfill);
  /// Free lower-priority capacity for `job`; true if anything was evicted.
  bool TryPreemptFor(const JobInfo& job);
  void PreemptGang(JobInfo& victim);
  void ShrinkElastic(JobInfo& victim, int cores_wanted);
  void OfferGrowth();
  /// Earliest time `job` could start given running jobs' estimated ends
  /// (the EASY backfill shadow time). Infinity when estimates never free
  /// enough.
  [[nodiscard]] SimTime ShadowTime(const JobInfo& job) const;
  /// Fold elapsed time into queue usage + busy core-seconds.
  void AccrueUsage();
  void ReleaseAll(JobInfo& job);
  void CompleteJob(int job_id);

  cluster::Cluster& cluster_;
  sim::Engine& engine_;
  SchedOptions options_;
  JobQueue queue_;
  std::map<int, JobInfo> jobs_;
  std::map<int, JobHooks> hooks_;
  int next_job_id_ = 0;
  int jobs_done_ = 0;
  int jobs_running_ = 0;
  int preemptions_ = 0;
  int backfills_ = 0;
  int grow_rr_cursor_ = 0;  // round-robin fairness for growth offers
  SimTime last_accrual_ = 0;
  double busy_core_seconds_ = 0;
  bool in_pass_ = false;  // passes never nest

  struct Tags {
    obs::TagId submitted = obs::kNoTag;
    obs::TagId started = obs::kNoTag;
    obs::TagId completed = obs::kNoTag;
    obs::TagId preempted = obs::kNoTag;
    obs::TagId backfilled = obs::kNoTag;
    obs::TagId grown = obs::kNoTag;
    obs::TagId shrunk = obs::kNoTag;
    obs::TagId queue_wait = obs::kNoTag;  // histogram, seconds
    obs::TagId utilization_cores = obs::kNoTag;
  };
  Tags tags_;
};

}  // namespace pstk::sched
