#include "sched/sched.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace pstk::sched {

const char* ParadigmName(Paradigm paradigm) {
  switch (paradigm) {
    case Paradigm::kMpi:
      return "mpi";
    case Paradigm::kShmem:
      return "shmem";
    case Paradigm::kSpark:
      return "spark";
    case Paradigm::kMr:
      return "mr";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

void JobQueue::Submit(int job_id, const std::string& queue, bool front) {
  Entry& entry = queues_[queue];
  if (front) {
    entry.jobs.push_front(job_id);
  } else {
    entry.jobs.push_back(job_id);
  }
}

void JobQueue::Remove(int job_id, const std::string& queue) {
  auto it = queues_.find(queue);
  PSTK_CHECK_MSG(it != queues_.end(), "unknown queue " << queue);
  auto pos = std::find(it->second.jobs.begin(), it->second.jobs.end(), job_id);
  PSTK_CHECK_MSG(pos != it->second.jobs.end(),
                 "job " << job_id << " not pending in queue " << queue);
  it->second.jobs.erase(pos);
}

bool JobQueue::Empty() const { return Pending() == 0; }

std::size_t JobQueue::Pending() const {
  std::size_t n = 0;
  for (const auto& [name, entry] : queues_) n += entry.jobs.size();
  return n;
}

void JobQueue::SetWeight(const std::string& queue, double weight) {
  PSTK_CHECK_MSG(weight > 0, "queue weight must be positive");
  queues_[queue].weight = weight;
}

void JobQueue::AddUsage(const std::string& queue, double core_seconds) {
  queues_[queue].usage += core_seconds;
}

double JobQueue::Share(const std::string& queue) const {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return 0;
  return it->second.usage / it->second.weight;
}

std::vector<const std::map<std::string, JobQueue::Entry>::value_type*>
JobQueue::Ranked() const {
  std::vector<const std::map<std::string, Entry>::value_type*> ranked;
  for (const auto& entry : queues_) ranked.push_back(&entry);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto* a, const auto* b) {
                     const double share_a = a->second.usage / a->second.weight;
                     const double share_b = b->second.usage / b->second.weight;
                     if (share_a != share_b) return share_a < share_b;
                     return a->first < b->first;
                   });
  return ranked;
}

std::optional<int> JobQueue::FairShareHead() const {
  for (const auto* entry : Ranked()) {
    if (!entry->second.jobs.empty()) return entry->second.jobs.front();
  }
  return std::nullopt;
}

std::vector<int> JobQueue::InScanOrder() const {
  std::vector<int> order;
  for (const auto* entry : Ranked()) {
    for (int id : entry->second.jobs) order.push_back(id);
  }
  return order;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(cluster::Cluster& cluster, SchedOptions options)
    : cluster_(cluster), engine_(cluster.engine()), options_(std::move(options)) {
  for (const auto& [queue, weight] : options_.queue_weights) {
    queue_.SetWeight(queue, weight);
  }
  obs::Registry& reg = engine_.obs();
  tags_.submitted = reg.Intern("sched.submitted");
  tags_.started = reg.Intern("sched.started");
  tags_.completed = reg.Intern("sched.completed");
  tags_.preempted = reg.Intern("sched.preempted");
  tags_.backfilled = reg.Intern("sched.backfilled");
  tags_.grown = reg.Intern("sched.grown");
  tags_.shrunk = reg.Intern("sched.shrunk");
  tags_.queue_wait = reg.Intern("sched.queue_wait");
  tags_.utilization_cores = reg.Intern("sched.busy_cores");
}

int Scheduler::Submit(JobSpec spec) {
  PSTK_CHECK_MSG(spec.procs >= 1, "job needs at least one proc");
  PSTK_CHECK_MSG(spec.procs_per_node >= 1, "procs_per_node must be >= 1");
  PSTK_CHECK_MSG(spec.min_procs >= 1 && spec.min_procs <= spec.procs,
                 "min_procs must be in [1, procs]");
  PSTK_CHECK_MSG(static_cast<bool>(spec.launch), "job needs a launcher");
  const int id = next_job_id_++;
  JobInfo& job = jobs_[id];
  job.id = id;
  job.spec = std::move(spec);
  job.submit_time = engine_.now();
  queue_.Submit(id, job.spec.queue);
  engine_.obs().Add(tags_.submitted);
  if (!in_pass_) SchedulePass();
  return id;
}

void Scheduler::OnJobDone(int job_id) {
  // Decouple from the caller: completion is reported from inside framework
  // teardown (the last rank / the driver), and the follow-up scheduling
  // pass spawns new processes — that belongs in its own engine event.
  engine_.ScheduleEvent(engine_.now(),
                        [this, job_id] { CompleteJob(job_id); });
}

const JobInfo& Scheduler::job(int job_id) const {
  auto it = jobs_.find(job_id);
  PSTK_CHECK_MSG(it != jobs_.end(), "unknown job " << job_id);
  return it->second;
}

double Scheduler::busy_core_seconds() {
  AccrueUsage();
  return busy_core_seconds_;
}

void Scheduler::AccrueUsage() {
  const SimTime now = engine_.now();
  const SimTime dt = now - last_accrual_;
  if (dt <= 0) return;
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    int cores = 0;
    for (const auto& [node, count] : job.alloc) cores += count;
    queue_.AddUsage(job.spec.queue, static_cast<double>(cores) * dt);
    busy_core_seconds_ += static_cast<double>(cores) * dt;
  }
  last_accrual_ = now;
}

std::vector<int> Scheduler::FreeCoresNow() const {
  std::vector<int> free(static_cast<std::size_t>(cluster_.nodes()));
  for (int n = 0; n < cluster_.nodes(); ++n) free[n] = cluster_.FreeCores(n);
  return free;
}

bool Scheduler::TryPlaceGang(const JobInfo& job, const std::vector<int>& free,
                             std::vector<int>* placement) const {
  const int ppn = job.spec.procs_per_node;
  const int nodes_needed = (job.spec.procs + ppn - 1) / ppn;
  // All-or-nothing, whole-node: a gang node must be entirely free, and the
  // job owns it exclusively (which is what makes preemption-by-node safe).
  std::vector<int> chosen;
  for (int n = 0; n < cluster_.nodes() &&
                  static_cast<int>(chosen.size()) < nodes_needed;
       ++n) {
    if (free[n] == cluster_.cores_per_node()) chosen.push_back(n);
  }
  if (static_cast<int>(chosen.size()) < nodes_needed) return false;
  if (placement != nullptr) {
    placement->clear();
    for (int r = 0; r < job.spec.procs; ++r) {
      placement->push_back(chosen[r / ppn]);
    }
  }
  return true;
}

bool Scheduler::TryPlaceElastic(const JobInfo& job,
                                const std::vector<int>& free,
                                std::vector<int>* placement) const {
  const int ppn = job.spec.procs_per_node;
  std::vector<int> grant;
  int remaining = job.spec.procs;
  for (int n = 0; n < cluster_.nodes() && remaining > 0; ++n) {
    const int take = std::min({free[n], ppn, remaining});
    for (int i = 0; i < take; ++i) grant.push_back(n);
    remaining -= take;
  }
  if (static_cast<int>(grant.size()) < job.spec.min_procs) return false;
  if (placement != nullptr) *placement = std::move(grant);
  return true;
}

bool Scheduler::CanPlace(const JobInfo& job) const {
  const std::vector<int> free = FreeCoresNow();
  return IsGang(job.spec.paradigm) ? TryPlaceGang(job, free, nullptr)
                                   : TryPlaceElastic(job, free, nullptr);
}

bool Scheduler::TryStart(JobInfo& job, bool backfill) {
  const std::vector<int> free = FreeCoresNow();
  std::vector<int> placement;
  const bool placed = IsGang(job.spec.paradigm)
                          ? TryPlaceGang(job, free, &placement)
                          : TryPlaceElastic(job, free, &placement);
  if (!placed) return false;
  StartJob(job, std::move(placement), backfill);
  return true;
}

void Scheduler::StartJob(JobInfo& job, std::vector<int> placement,
                         bool backfill) {
  queue_.Remove(job.id, job.spec.queue);
  // Reserve: gang takes its nodes whole, elastic takes one core per proc.
  if (IsGang(job.spec.paradigm)) {
    std::set<int> nodes(placement.begin(), placement.end());
    for (int node : nodes) {
      PSTK_CHECK(cluster_.ReserveCores(node, cluster_.cores_per_node(),
                                       job.id));
      job.alloc[node] = cluster_.cores_per_node();
    }
  } else {
    for (int node : placement) {
      PSTK_CHECK(cluster_.ReserveCores(node, 1, job.id));
      ++job.alloc[node];
    }
  }
  job.state = JobState::kRunning;
  job.last_start = engine_.now();
  job.procs_running = static_cast<int>(placement.size());
  ++jobs_running_;
  obs::Registry& reg = engine_.obs();
  reg.Add(tags_.started);
  if (job.first_start < 0) {
    job.first_start = engine_.now();
    reg.Observe(tags_.queue_wait, job.first_start - job.submit_time);
  }
  if (backfill) {
    job.backfilled = true;
    ++backfills_;
    reg.Add(tags_.backfilled);
  }
  PSTK_INFO("sched") << job.spec.name << " (job " << job.id << ", "
                     << ParadigmName(job.spec.paradigm) << ") starts on "
                     << placement.size() << " proc(s), attempt "
                     << job.attempt;
  Launch launch;
  launch.job_id = job.id;
  launch.attempt = job.attempt;
  launch.placement = std::move(placement);
  launch.max_procs = job.spec.procs;
  hooks_[job.id] = job.spec.launch(launch);
}

SimTime Scheduler::ShadowTime(const JobInfo& job) const {
  std::vector<int> free = FreeCoresNow();
  // Running jobs hand their allocations back in estimated-end order.
  std::vector<const JobInfo*> running;
  for (const auto& [id, other] : jobs_) {
    if (other.state == JobState::kRunning) running.push_back(&other);
  }
  std::stable_sort(running.begin(), running.end(),
                   [](const JobInfo* a, const JobInfo* b) {
                     return a->last_start + a->spec.est_runtime <
                            b->last_start + b->spec.est_runtime;
                   });
  const bool gang = IsGang(job.spec.paradigm);
  for (const JobInfo* other : running) {
    for (const auto& [node, cores] : other->alloc) free[node] += cores;
    const bool fits = gang ? TryPlaceGang(job, free, nullptr)
                           : TryPlaceElastic(job, free, nullptr);
    if (fits) return other->last_start + other->spec.est_runtime;
  }
  return std::numeric_limits<SimTime>::infinity();
}

bool Scheduler::TryPreemptFor(const JobInfo& job) {
  if (job.spec.priority <= 0) return false;
  bool evicted = false;
  std::set<int> tried;
  while (!CanPlace(job)) {
    // Victim: lowest priority first, then youngest (least lost work).
    const JobInfo* victim = nullptr;
    for (const auto& [id, other] : jobs_) {
      if (other.state != JobState::kRunning) continue;
      if (other.spec.priority >= job.spec.priority) continue;
      if (tried.count(id) > 0) continue;
      if (!IsGang(other.spec.paradigm) &&
          other.procs_running <= other.spec.min_procs) {
        continue;  // already at its elastic floor
      }
      if (victim == nullptr ||
          other.spec.priority < victim->spec.priority ||
          (other.spec.priority == victim->spec.priority &&
           other.last_start > victim->last_start)) {
        victim = &other;
      }
    }
    if (victim == nullptr) return evicted;
    tried.insert(victim->id);
    JobInfo& mut = jobs_.at(victim->id);
    if (IsGang(mut.spec.paradigm)) {
      PreemptGang(mut);
    } else {
      ShrinkElastic(mut, mut.procs_running - mut.spec.min_procs);
    }
    evicted = true;
  }
  return evicted;
}

void Scheduler::PreemptGang(JobInfo& victim) {
  PSTK_INFO("sched") << victim.spec.name << " (job " << victim.id
                     << ") preempted at t=" << engine_.now();
  auto hooks = hooks_.find(victim.id);
  PSTK_CHECK(hooks != hooks_.end() &&
             static_cast<bool>(hooks->second.kill));
  hooks->second.kill();
  hooks_.erase(hooks);
  ReleaseAll(victim);
  victim.state = JobState::kPending;
  ++victim.attempt;
  ++victim.preemptions;
  --jobs_running_;
  ++preemptions_;
  engine_.obs().Add(tags_.preempted);
  // Back to the *front* of its queue: the job already waited its turn, and
  // its next attempt resumes from the latest committed snapshot epoch.
  queue_.Submit(victim.id, victim.spec.queue, /*front=*/true);
}

void Scheduler::ShrinkElastic(JobInfo& victim, int cores_wanted) {
  auto hooks = hooks_.find(victim.id);
  PSTK_CHECK(hooks != hooks_.end());
  if (!hooks->second.shrink) return;
  while (cores_wanted > 0 && victim.procs_running > victim.spec.min_procs) {
    const int node = hooks->second.shrink();
    if (node < 0) break;
    cluster_.ReleaseCores(node, 1, victim.id);
    auto it = victim.alloc.find(node);
    PSTK_CHECK(it != victim.alloc.end() && it->second > 0);
    if (--it->second == 0) victim.alloc.erase(it);
    --victim.procs_running;
    --cores_wanted;
    engine_.obs().Add(tags_.shrunk);
  }
}

void Scheduler::OfferGrowth() {
  // Leftover cores go to running elastic jobs below their target, one proc
  // per job per round (round-robin from after the last grown job, so a
  // single hungry app cannot starve the others).
  std::vector<int> candidates;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning && !IsGang(job.spec.paradigm) &&
        job.procs_running < job.spec.procs && hooks_[id].grow) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return;
  // Rotate so ids above the cursor go first.
  std::stable_partition(candidates.begin(), candidates.end(),
                        [this](int id) { return id > grow_rr_cursor_; });
  bool granted = true;
  while (granted) {
    granted = false;
    for (auto it = candidates.begin(); it != candidates.end();) {
      JobInfo& job = jobs_.at(*it);
      if (job.procs_running >= job.spec.procs) {
        it = candidates.erase(it);
        continue;
      }
      int node = -1;
      for (int n = 0; n < cluster_.nodes(); ++n) {
        auto held = job.alloc.find(n);
        const int mine = held == job.alloc.end() ? 0 : held->second;
        if (cluster_.FreeCores(n) > 0 && mine < job.spec.procs_per_node) {
          node = n;
          break;
        }
      }
      if (node < 0 || !hooks_[*it].grow(node)) {
        it = candidates.erase(it);
        continue;
      }
      PSTK_CHECK(cluster_.ReserveCores(node, 1, job.id));
      ++job.alloc[node];
      ++job.procs_running;
      grow_rr_cursor_ = job.id;
      engine_.obs().Add(tags_.grown);
      granted = true;
      ++it;
    }
  }
}

void Scheduler::SchedulePass() {
  PSTK_CHECK(!in_pass_);
  in_pass_ = true;
  AccrueUsage();
  bool progress = true;
  while (progress) {
    progress = false;
    const std::optional<int> head = queue_.FairShareHead();
    if (head.has_value()) {
      JobInfo& job = jobs_.at(*head);
      if (TryStart(job, /*backfill=*/false)) {
        progress = true;
        continue;
      }
      if (options_.preemption && TryPreemptFor(job) &&
          TryStart(job, /*backfill=*/false)) {
        progress = true;
        continue;
      }
      // Head is blocked: EASY backfill — later jobs may start now iff
      // their estimate finishes before the head's shadow time.
      if (options_.backfill) {
        const SimTime shadow = ShadowTime(job);
        for (int id : queue_.InScanOrder()) {
          if (id == *head) continue;
          JobInfo& candidate = jobs_.at(id);
          if (engine_.now() + candidate.spec.est_runtime > shadow) continue;
          if (TryStart(candidate, /*backfill=*/true)) {
            progress = true;
            break;
          }
        }
      }
    }
  }
  OfferGrowth();
  // Instantaneous reserved capacity at every scheduling decision point —
  // the utilization histogram the service bench reports.
  engine_.obs().Observe(tags_.utilization_cores,
                        static_cast<double>(cluster_.UsedCores()));
  in_pass_ = false;
}

void Scheduler::ReleaseAll(JobInfo& job) {
  for (const auto& [node, count] : job.alloc) {
    cluster_.ReleaseCores(node, count, job.id);
  }
  job.alloc.clear();
  job.procs_running = 0;
}

void Scheduler::CompleteJob(int job_id) {
  JobInfo& job = jobs_.at(job_id);
  // Stale completion: the job was preempted in the same instant its done
  // event was in flight (the relaunched attempt will report again), or a
  // duplicate completion event. Either way there is nothing to release.
  if (job.state != JobState::kRunning) return;
  AccrueUsage();
  ReleaseAll(job);
  hooks_.erase(job_id);
  job.state = JobState::kDone;
  job.end_time = engine_.now();
  ++jobs_done_;
  --jobs_running_;
  engine_.obs().Add(tags_.completed);
  PSTK_INFO("sched") << job.spec.name << " (job " << job_id << ") done at t="
                     << job.end_time;
  SchedulePass();
}

}  // namespace pstk::sched
