// Immutable, refcounted byte buffers — the zero-copy currency of the data
// plane (DFS blocks, shuffle buckets, network payloads, cached partitions).
//
// A `Bytes` is a cheap value type over shared, immutable chunks:
//
//  * `Slice()` aliases the same storage (a refcount bump, no copy), so a
//    DFS block, the cached RDD partition built from it, and the shuffle
//    bucket shipped from it can all share one allocation;
//  * `Concat()` is rope-style: it stitches spans without copying, and
//    coalesces adjacent slices of the same chunk back into one flat span
//    (reading all blocks of one installed file yields a flat view again);
//  * `FromString`/`FromVector` take ownership of an existing allocation
//    (the serde `Writer` hands its buffer over this way — see
//    `Writer::TakeBytes`), `Copy` is the one-allocation deep copy.
//
// Immutability + refcounting is all the lifetime machinery the simulator
// needs: simulated processes are cooperatively scheduled fibers (or
// lockstep threads), so chunk payloads are never mutated after creation
// and the shared_ptr control block handles the one cross-thread hazard
// (sharded engine workers releasing replicas concurrently).
//
// Every deep copy the data plane still performs is counted in a
// process-global `Stats` (chunks allocated/aliased, bytes copied, and a
// log2 size histogram) so copy-elimination is measurable in every bench
// (`--metrics` surfaces the deltas; see bench/bench_opts.cc).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace pstk::buf {

/// Point-in-time copy of the process-global buffer statistics. Counters are
/// monotonic; callers diff two snapshots to attribute activity to a run.
/// `copy_hist` uses the same log2 bucketing as obs::Histogram (bucket =
/// binary exponent + 32, clamped to [0, 64)).
struct StatsSnapshot {
  std::uint64_t chunks_allocated = 0;  // distinct backing allocations
  std::uint64_t chunks_aliased = 0;    // zero-copy spans minted over them
  std::uint64_t copies = 0;            // deep-copy events
  std::uint64_t copy_bytes = 0;        // total bytes deep-copied
  std::array<std::uint64_t, 64> copy_hist{};
};

[[nodiscard]] StatsSnapshot SnapshotStats();

class Bytes {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Bytes() = default;

  /// Deep-copy `data` into one fresh chunk (counted in Stats).
  [[nodiscard]] static Bytes Copy(std::string_view data);
  /// Take ownership of an existing allocation — no copy.
  [[nodiscard]] static Bytes FromString(std::string&& s);
  [[nodiscard]] static Bytes FromVector(std::vector<std::uint8_t>&& v);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Number of distinct spans (1 for flat non-empty, 0 for empty).
  [[nodiscard]] std::size_t chunk_count() const {
    return (head_.chunk ? 1 : 0) + tail_.size();
  }
  /// True when the bytes are one contiguous run (or empty).
  [[nodiscard]] bool flat() const { return tail_.empty(); }

  /// Contiguous view. CHECK-fails on a rope — call Flatten() first.
  [[nodiscard]] std::string_view view() const;
  [[nodiscard]] const std::uint8_t* data() const;

  /// Zero-copy sub-range [pos, pos+len): the result aliases this buffer's
  /// chunks. `len == npos` means "to the end".
  [[nodiscard]] Bytes Slice(std::size_t pos, std::size_t len = npos) const;

  /// Rope-style concatenation: no payload copy. Adjacent spans over the
  /// same chunk coalesce, so concatenating consecutive slices of one chunk
  /// yields a flat result.
  [[nodiscard]] static Bytes Concat(const std::vector<Bytes>& parts);

  /// Flat alias if already flat; otherwise one fresh contiguous chunk
  /// (a counted copy).
  [[nodiscard]] Bytes Flatten() const;

  /// Materialize a std::string (always a counted copy).
  [[nodiscard]] std::string ToString() const;
  /// Copy all bytes to `out` (caller guarantees room; counted).
  void CopyTo(void* out) const;

  /// Visit each contiguous span in order.
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    if (head_.chunk) fn(head_.View());
    for (const Span& s : tail_) fn(s.View());
  }

  [[nodiscard]] bool Equals(std::string_view other) const;
  friend bool operator==(const Bytes& a, const Bytes& b);
  friend bool operator==(const Bytes& a, std::string_view b) {
    return a.Equals(b);
  }
  friend bool operator==(std::string_view a, const Bytes& b) {
    return b.Equals(a);
  }
  friend bool operator!=(const Bytes& a, const Bytes& b) { return !(a == b); }

 private:
  /// Refcounted immutable storage. Exactly one of `str`/`vec` owns the
  /// payload; `data`/`size` point into it.
  struct Chunk {
    explicit Chunk(std::string s);
    explicit Chunk(std::vector<std::uint8_t> v);
    std::string str;
    std::vector<std::uint8_t> vec;
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };
  using ChunkRef = std::shared_ptr<const Chunk>;

  struct Span {
    ChunkRef chunk;
    std::size_t off = 0;
    std::size_t len = 0;
    [[nodiscard]] std::string_view View() const {
      return {reinterpret_cast<const char*>(chunk->data) + off, len};
    }
  };

  static Bytes FromChunk(ChunkRef chunk);
  void AppendSpan(const Span& span);

  // Single-span fast path: `head_` holds flat buffers entirely; `tail_`
  // carries the remaining spans of a rope.
  Span head_;
  std::vector<Span> tail_;
  std::size_t size_ = 0;
};

/// Incremental zero-copy assembly: `Append(Bytes)` splices without copying,
/// `Append(string_view)` accumulates into a pending chunk (one counted copy
/// per flush, not per call). `Build()` yields the concatenation.
class Builder {
 public:
  void Append(std::string_view data);
  void Append(Bytes bytes);
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Finish and reset the builder.
  [[nodiscard]] Bytes Build();

 private:
  void FlushPending();
  std::string pending_;
  std::vector<Bytes> parts_;
  std::size_t size_ = 0;
};

}  // namespace pstk::buf
