#include "buf/bytes.h"

#include <algorithm>

namespace pstk::buf {
namespace {

// Process-global counters. Relaxed atomics: adds are commutative, so the
// totals are identical for any shard count / worker interleaving, and
// reads by SnapshotStats need no ordering with respect to each other.
struct Stats {
  std::atomic<std::uint64_t> chunks_allocated{0};
  std::atomic<std::uint64_t> chunks_aliased{0};
  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> copy_bytes{0};
  std::array<std::atomic<std::uint64_t>, 64> copy_hist{};
};

Stats& stats() {
  static Stats s;
  return s;
}

// Same bucketing as obs::Histogram (binary exponent + 32, clamped) so the
// snapshot converts losslessly into an obs histogram for --metrics tables.
std::size_t BucketFor(std::size_t bytes) {
  int exp = 0;
  while (bytes != 0) {  // exp = bit width = binary exponent + 1
    bytes >>= 1;
    ++exp;
  }
  return static_cast<std::size_t>(std::clamp(exp + 32, 0, 63));
}

void CountCopy(std::size_t bytes) {
  Stats& s = stats();
  s.copies.fetch_add(1, std::memory_order_relaxed);
  s.copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
  s.copy_hist[BucketFor(bytes)].fetch_add(1, std::memory_order_relaxed);
}

void CountAlias(std::uint64_t spans) {
  stats().chunks_aliased.fetch_add(spans, std::memory_order_relaxed);
}

}  // namespace

StatsSnapshot SnapshotStats() {
  const Stats& s = stats();
  StatsSnapshot out;
  out.chunks_allocated = s.chunks_allocated.load(std::memory_order_relaxed);
  out.chunks_aliased = s.chunks_aliased.load(std::memory_order_relaxed);
  out.copies = s.copies.load(std::memory_order_relaxed);
  out.copy_bytes = s.copy_bytes.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < out.copy_hist.size(); ++i) {
    out.copy_hist[i] = s.copy_hist[i].load(std::memory_order_relaxed);
  }
  return out;
}

Bytes::Chunk::Chunk(std::string s)
    : str(std::move(s)),
      data(reinterpret_cast<const std::uint8_t*>(str.data())),
      size(str.size()) {
  stats().chunks_allocated.fetch_add(1, std::memory_order_relaxed);
}

Bytes::Chunk::Chunk(std::vector<std::uint8_t> v)
    : vec(std::move(v)), data(vec.data()), size(vec.size()) {
  stats().chunks_allocated.fetch_add(1, std::memory_order_relaxed);
}

Bytes Bytes::FromChunk(ChunkRef chunk) {
  Bytes out;
  out.size_ = chunk->size;
  if (out.size_ > 0) {
    out.head_ = Span{std::move(chunk), 0, out.size_};
  }
  return out;
}

Bytes Bytes::Copy(std::string_view data) {
  if (data.empty()) return {};
  CountCopy(data.size());
  return FromChunk(std::make_shared<const Chunk>(std::string(data)));
}

Bytes Bytes::FromString(std::string&& s) {
  if (s.empty()) return {};
  return FromChunk(std::make_shared<const Chunk>(std::move(s)));
}

Bytes Bytes::FromVector(std::vector<std::uint8_t>&& v) {
  if (v.empty()) return {};
  return FromChunk(std::make_shared<const Chunk>(std::move(v)));
}

std::string_view Bytes::view() const {
  PSTK_CHECK_MSG(flat(), "Bytes::view on a rope (" << chunk_count()
                                                   << " chunks) — Flatten()");
  return head_.chunk ? head_.View() : std::string_view{};
}

const std::uint8_t* Bytes::data() const {
  return reinterpret_cast<const std::uint8_t*>(view().data());
}

void Bytes::AppendSpan(const Span& span) {
  if (span.len == 0) return;
  Span* last = tail_.empty() ? (head_.chunk ? &head_ : nullptr)
                             : &tail_.back();
  // Coalesce: an adjacent slice of the same chunk extends the last span,
  // keeping "concat of consecutive slices" flat.
  if (last != nullptr && last->chunk == span.chunk &&
      last->off + last->len == span.off) {
    last->len += span.len;
  } else if (last == nullptr) {
    head_ = span;
    CountAlias(1);
  } else {
    tail_.push_back(span);
    CountAlias(1);
  }
  size_ += span.len;
}

Bytes Bytes::Slice(std::size_t pos, std::size_t len) const {
  PSTK_CHECK_MSG(pos <= size_, "Bytes::Slice pos " << pos << " > size "
                                                   << size_);
  const std::size_t want = std::min(len, size_ - pos);
  Bytes out;
  if (want == 0) return out;
  std::size_t skip = pos;
  std::size_t need = want;
  auto take = [&](const Span& s) {
    if (need == 0) return;
    if (skip >= s.len) {
      skip -= s.len;
      return;
    }
    const std::size_t n = std::min(need, s.len - skip);
    out.AppendSpan(Span{s.chunk, s.off + skip, n});
    skip = 0;
    need -= n;
  };
  if (head_.chunk) take(head_);
  for (const Span& s : tail_) take(s);
  return out;
}

Bytes Bytes::Concat(const std::vector<Bytes>& parts) {
  Bytes out;
  for (const Bytes& part : parts) {
    if (part.head_.chunk) out.AppendSpan(part.head_);
    for (const Span& s : part.tail_) out.AppendSpan(s);
  }
  return out;
}

Bytes Bytes::Flatten() const {
  if (flat()) {
    CountAlias(head_.chunk ? 1 : 0);
    return *this;
  }
  // Assemble directly into the new chunk's storage: one copy, counted once
  // (Copy(ToString()) would materialize twice).
  std::string out;
  out.reserve(size_);
  ForEachChunk([&](std::string_view v) { out.append(v); });
  CountCopy(out.size());
  return FromString(std::move(out));
}

std::string Bytes::ToString() const {
  if (empty()) return {};
  if (flat()) {
    const std::string_view v = view();
    CountCopy(v.size());
    return std::string(v);
  }
  std::string out;
  out.reserve(size_);
  ForEachChunk([&](std::string_view v) { out.append(v); });
  CountCopy(out.size());
  return out;
}

void Bytes::CopyTo(void* out) const {
  auto* p = static_cast<std::uint8_t*>(out);
  ForEachChunk([&](std::string_view v) {
    std::memcpy(p, v.data(), v.size());
    p += v.size();
  });
  CountCopy(size_);
}

bool Bytes::Equals(std::string_view other) const {
  if (size_ != other.size()) return false;
  std::size_t pos = 0;
  bool eq = true;
  ForEachChunk([&](std::string_view v) {
    if (eq && other.compare(pos, v.size(), v) != 0) eq = false;
    pos += v.size();
  });
  return eq;
}

bool operator==(const Bytes& a, const Bytes& b) {
  if (a.size_ != b.size_) return false;
  if (a.flat()) return b.Equals(a.view());
  if (b.flat()) return a.Equals(b.view());
  return a.ToString() == b.ToString();  // rope-vs-rope: rare, correctness-only
}

void Builder::FlushPending() {
  if (pending_.empty()) return;
  CountCopy(pending_.size());
  parts_.push_back(Bytes::FromString(std::move(pending_)));
  pending_.clear();
}

void Builder::Append(std::string_view data) {
  pending_.append(data);
  size_ += data.size();
}

void Builder::Append(Bytes bytes) {
  size_ += bytes.size();
  FlushPending();
  parts_.push_back(std::move(bytes));
}

Bytes Builder::Build() {
  FlushPending();
  Bytes out = Bytes::Concat(parts_);
  parts_.clear();
  size_ = 0;
  return out;
}

}  // namespace pstk::buf
