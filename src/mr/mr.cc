#include "mr/mr.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "common/log.h"
#include "common/strings.h"
#include "serde/serde.h"

namespace pstk::mr {

namespace {

// Message tags of the coordinator protocol.
constexpr int kTagRequest = 1;     // worker -> coord: give me work
constexpr int kTagAssign = 2;      // coord -> worker: task / wait / exit
constexpr int kTagMapDone = 3;     // worker -> coord
constexpr int kTagReduceDone = 4;  // worker -> coord
constexpr int kTagFetchFail = 5;   // worker -> coord: lost map outputs

enum class AssignKind : std::uint8_t { kMap = 0, kReduce = 1, kWait = 2, kExit = 3 };

struct AssignMsg {
  std::uint8_t kind;
  std::int32_t task_id;
};

buf::Bytes EncodeAssign(AssignKind kind, int task_id) {
  serde::Writer w;
  w.WriteRaw<std::uint8_t>(static_cast<std::uint8_t>(kind));
  w.WriteRaw<std::int32_t>(task_id);
  return w.TakeBytes();
}

AssignMsg DecodeAssign(const buf::Bytes& buffer) {
  serde::Reader r(buffer);
  AssignMsg msg{};
  msg.kind = r.ReadRaw<std::uint8_t>().value();
  msg.task_id = r.ReadRaw<std::int32_t>().value();
  return msg;
}

using KvVec = std::vector<std::pair<std::string, std::string>>;

class VectorEmitter : public Emitter {
 public:
  void Emit(std::string key, std::string value) override {
    kvs.emplace_back(std::move(key), std::move(value));
  }
  KvVec kvs;
};

class LineEmitter : public Emitter {
 public:
  void Emit(std::string key, std::string value) override {
    lines += key;
    lines += '\t';
    lines += value;
    lines += '\n';
    ++count;
  }
  std::string lines;
  std::uint64_t count = 0;
};

/// Group sorted KVs by key and feed them to `fn`.
void GroupAndApply(const KvVec& sorted, const ReduceFn& fn, Emitter& out) {
  std::size_t i = 0;
  std::vector<std::string> values;
  while (i < sorted.size()) {
    const std::string& key = sorted[i].first;
    values.clear();
    while (i < sorted.size() && sorted[i].first == key) {
      values.push_back(sorted[i].second);
      ++i;
    }
    fn(key, values, out);
  }
}

std::uint64_t HashKey(const std::string& key) {
  return std::hash<std::string>{}(key);
}

}  // namespace

// ---------------------------------------------------------------------------
// Job state (shared between coordinator and workers via shared_ptr)
// ---------------------------------------------------------------------------

struct MrEngine::Job {
  JobConf conf;
  MapFn map;
  ReduceFn reduce;
  std::optional<ReduceFn> combine;
  std::function<void(Result<JobResult>)> on_done;

  std::unique_ptr<net::Network> network;
  int num_workers = 0;
  std::vector<sim::Pid> worker_pids;  // by worker id (0-based)
  std::vector<int> worker_nodes;

  // Split/block metadata.
  std::vector<std::vector<int>> split_locations;
  // Per-split (path, block) source, populated when input_path names a
  // directory (chained jobs read the previous job's part-r-* files).
  // Empty means split m is block m of input_path itself.
  std::vector<std::pair<std::string, std::size_t>> split_source;

  // Coordinator bookkeeping.
  std::deque<int> pending_maps;
  std::deque<int> pending_reduces;
  std::map<int, int> running_maps;     // map id -> worker id
  std::map<int, int> running_reduces;  // reduce id -> worker id
  std::set<int> done_maps;
  std::set<int> done_reduces;

  struct MapOutput {
    int node = -1;
    std::vector<buf::Bytes> partitions;  // one per reducer
  };
  std::map<int, MapOutput> map_outputs;

  Counters counters;
  SimTime submit_time = 0;
  bool finished = false;
};

// ---------------------------------------------------------------------------
// MrEngine
// ---------------------------------------------------------------------------

MrEngine::MrEngine(cluster::Cluster& cluster, dfs::MiniDfs& dfs,
                   MrOptions options)
    : cluster_(cluster), dfs_(dfs), options_(std::move(options)) {
  fabric_ = cluster_.fabric(options_.transport);
  obs::Registry& reg = cluster_.engine().obs();
  tags_.map_task = reg.Intern("mr.map_task");
  tags_.reduce_task = reg.Intern("mr.reduce_task");
  tags_.map_read = reg.Intern("mr.map.read");
  tags_.map_map = reg.Intern("mr.map.map");
  tags_.map_sort = reg.Intern("mr.map.sort");
  tags_.map_spill = reg.Intern("mr.map.spill");
  tags_.reduce_shuffle = reg.Intern("mr.reduce.shuffle");
  tags_.reduce_merge = reg.Intern("mr.reduce.merge");
  tags_.reduce_reduce = reg.Intern("mr.reduce.reduce");
  tags_.reduce_output = reg.Intern("mr.reduce.output");
  tags_.time_map_read = reg.Intern("mr.time.map_read");
  tags_.time_map = reg.Intern("mr.time.map");
  tags_.time_sort = reg.Intern("mr.time.sort");
  tags_.time_spill = reg.Intern("mr.time.spill");
  tags_.time_shuffle = reg.Intern("mr.time.shuffle");
  tags_.time_merge = reg.Intern("mr.time.merge");
  tags_.time_reduce = reg.Intern("mr.time.reduce");
  tags_.time_output = reg.Intern("mr.time.output");
  tags_.map_tasks = reg.Intern("mr.map_tasks");
  tags_.reduce_tasks = reg.Intern("mr.reduce_tasks");
  tags_.task_retries = reg.Intern("mr.task_retries");
  tags_.recovery_task_retries = reg.Intern("recovery.mr.task_retries");
  tags_.spilled_bytes = reg.Intern("mr.spilled_bytes");
  tags_.shuffled_bytes = reg.Intern("mr.shuffled_bytes");
}

Result<JobResult> MrEngine::RunJob(JobConf conf, MapFn map, ReduceFn reduce,
                                   std::optional<ReduceFn> combine) {
  std::optional<Result<JobResult>> outcome;
  Submit(std::move(conf), std::move(map), std::move(reduce),
         std::move(combine),
         [&outcome](Result<JobResult> result) { outcome = std::move(result); });
  const sim::RunResult run = cluster_.engine().Run();
  if (outcome.has_value()) return *std::move(outcome);
  if (!run.status.ok()) return run.status;
  return Internal("MapReduce job never completed");
}

MrEngine::JobHandle MrEngine::Submit(
    JobConf conf, MapFn map, ReduceFn reduce, std::optional<ReduceFn> combine,
    std::function<void(Result<JobResult>)> on_done) {
  auto job = std::make_shared<Job>();
  job->conf = std::move(conf);
  job->map = std::move(map);
  job->reduce = std::move(reduce);
  job->combine = std::move(combine);
  job->on_done = std::move(on_done);
  job->network = std::make_unique<net::Network>(cluster_.engine(), fabric_);
  ++job_seq_;

  // One worker per (node, slot), unless the conf placed workers explicitly.
  if (job->conf.worker_nodes.empty()) {
    job->num_workers = cluster_.nodes() * options_.slots_per_node;
    for (int w = 0; w < job->num_workers; ++w) {
      job->worker_nodes.push_back(w / options_.slots_per_node);
    }
  } else {
    job->worker_nodes = job->conf.worker_nodes;
    job->num_workers = static_cast<int>(job->worker_nodes.size());
  }

  // Endpoint 0 = coordinator; workers at 1 + id.
  job->network->CreateEndpoint(0, job->conf.coordinator_node);
  for (int w = 0; w < job->num_workers; ++w) {
    job->network->CreateEndpoint(1 + w, job->worker_nodes[w]);
  }
  job->worker_pids.assign(job->num_workers, sim::kNoPid);

  auto self = this;
  cluster_.engine().Spawn(
      job->conf.name + "-coord",
      [self, job](sim::Context& ctx) { self->CoordinatorMain(ctx, *job); },
      job->conf.coordinator_node);
  for (int w = 0; w < job->num_workers; ++w) {
    const int node = job->worker_nodes[w];
    // No NodeManager on a currently-failed node: its slots stay empty
    // (worker_pids keeps kNoPid, which the sweep treats as dead).
    if (cluster_.NodeFailed(node)) continue;
    job->worker_pids[w] = cluster_.engine().Spawn(
        job->conf.name + "-worker-" + std::to_string(w),
        [self, job, w](sim::Context& ctx) { self->WorkerMain(ctx, *job, w); },
        node);
  }
  return job;
}

int MrEngine::AddWorker(const JobHandle& job, int node) {
  const int w = job->num_workers++;
  job->worker_nodes.push_back(node);
  job->network->CreateEndpoint(1 + w, node);
  job->worker_pids.push_back(sim::kNoPid);
  if (!cluster_.NodeFailed(node) && !job->finished) {
    auto self = this;
    job->worker_pids[w] = cluster_.engine().Spawn(
        job->conf.name + "-worker-" + std::to_string(w),
        [self, job, w](sim::Context& ctx) { self->WorkerMain(ctx, *job, w); },
        node);
  }
  return w;
}

void MrEngine::KillWorker(const JobHandle& job, int worker_id) {
  const sim::Pid pid = job->worker_pids[static_cast<std::size_t>(worker_id)];
  if (pid != sim::kNoPid && cluster_.engine().IsAlive(pid)) {
    cluster_.engine().KillNow(pid);
  }
}

bool MrEngine::JobFinished(const JobHandle& job) { return job->finished; }

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

void MrEngine::CoordinatorMain(sim::Context& ctx, Job& job) {
  net::Endpoint& ep = job.network->endpoint(0);
  job.submit_time = ctx.now();
  ctx.SleepFor(options_.job_setup);  // job client + AM launch

  // Build splits from the input's DFS blocks. A path that is not a file
  // is treated as a directory: one split per block of each file under it
  // (List is sorted, so split numbering is deterministic).
  auto locations = dfs_.BlockLocations(job.conf.input_path);
  if (locations.ok()) {
    job.split_locations = std::move(locations).value();
  } else {
    std::string prefix = job.conf.input_path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    const std::vector<std::string> files = dfs_.List(prefix);
    if (files.empty()) {
      job.finished = true;
      job.on_done(locations.status());
      return;
    }
    for (const std::string& file : files) {
      auto file_locations = dfs_.BlockLocations(file);
      if (!file_locations.ok()) {
        job.finished = true;
        job.on_done(file_locations.status());
        return;
      }
      for (std::size_t b = 0; b < file_locations.value().size(); ++b) {
        job.split_locations.push_back(file_locations.value()[b]);
        job.split_source.emplace_back(file, b);
      }
    }
  }
  for (int m = 0; m < static_cast<int>(job.split_locations.size()); ++m) {
    job.pending_maps.push_back(m);
  }
  for (int r = 0; r < job.conf.num_reducers; ++r) {
    job.pending_reduces.push_back(r);
  }
  const auto total_maps = job.split_locations.size();
  const auto total_reduces = static_cast<std::size_t>(job.conf.num_reducers);

  while (job.done_reduces.size() < total_reduces) {
    auto msg = ep.RecvWithTimeout(ctx, ctx.now() + options_.heartbeat);
    if (!msg.has_value()) {
      SweepDeadWorkers(ctx, job);
      if (NoLiveWorkers(job)) {
        job.finished = true;
        job.on_done(Unavailable("all MapReduce workers lost"));
        return;
      }
      continue;
    }
    const int worker = msg->src - 1;
    switch (msg->tag) {
      case kTagRequest: {
        buf::Bytes reply;
        // Prefer a data-local map task for this worker's node.
        if (!job.pending_maps.empty()) {
          const int node = job.worker_nodes[worker];
          int chosen = job.pending_maps.front();
          for (int candidate : job.pending_maps) {
            const auto& replicas = job.split_locations[candidate];
            if (std::find(replicas.begin(), replicas.end(), node) !=
                replicas.end()) {
              chosen = candidate;
              break;
            }
          }
          job.pending_maps.erase(std::find(job.pending_maps.begin(),
                                           job.pending_maps.end(), chosen));
          job.running_maps[chosen] = worker;
          reply = EncodeAssign(AssignKind::kMap, chosen);
        } else if (job.done_maps.size() == total_maps &&
                   !job.pending_reduces.empty()) {
          const int r = job.pending_reduces.front();
          job.pending_reduces.pop_front();
          job.running_reduces[r] = worker;
          reply = EncodeAssign(AssignKind::kReduce, r);
        } else {
          reply = EncodeAssign(AssignKind::kWait, 0);
        }
        ep.SendAsync(ctx, msg->src, kTagAssign, std::move(reply));
        break;
      }
      case kTagMapDone: {
        serde::Reader r(msg->payload);
        const int map_id = static_cast<int>(r.ReadRaw<std::int32_t>().value());
        job.running_maps.erase(map_id);
        job.done_maps.insert(map_id);
        ++job.counters.map_tasks;
        break;
      }
      case kTagReduceDone: {
        serde::Reader r(msg->payload);
        const int reduce_id =
            static_cast<int>(r.ReadRaw<std::int32_t>().value());
        job.running_reduces.erase(reduce_id);
        job.done_reduces.insert(reduce_id);
        ++job.counters.reduce_tasks;
        break;
      }
      case kTagFetchFail: {
        // A reducer could not fetch some map outputs: re-run those maps and
        // requeue the reducer.
        serde::Reader r(msg->payload);
        const int reduce_id =
            static_cast<int>(r.ReadRaw<std::int32_t>().value());
        auto missing = r.ReadVarint();
        for (std::uint64_t i = 0; i < missing.value(); ++i) {
          const int map_id = static_cast<int>(r.ReadRaw<std::int32_t>().value());
          if (job.done_maps.erase(map_id) > 0) {
            job.map_outputs.erase(map_id);
            job.pending_maps.push_back(map_id);
            ++job.counters.task_retries;
            cluster_.engine().obs().Add(tags_.recovery_task_retries);
          }
        }
        job.running_reduces.erase(reduce_id);
        job.pending_reduces.push_back(reduce_id);
        ++job.counters.task_retries;
        cluster_.engine().obs().Add(tags_.recovery_task_retries);
        // The map->reduce stage barrier broke (a reducer ran while map
        // outputs were missing); the coordinator recovers by re-running.
        cluster_.engine().verify().OnStageBarrier(
            "mr", /*stage_id=*/reduce_id,
            static_cast<int>(job.done_maps.size()),
            static_cast<int>(total_maps), /*will_recover=*/true, ctx.now());
        break;
      }
      default:
        PSTK_CHECK_MSG(false, "unexpected MR message tag " << msg->tag);
    }
    SweepDeadWorkers(ctx, job);
  }

  // Shut the workers down.
  for (int w = 0; w < job.num_workers; ++w) {
    if (cluster_.engine().IsAlive(job.worker_pids[w])) {
      ep.SendAsync(ctx, 1 + w, kTagAssign, EncodeAssign(AssignKind::kExit, 0));
    }
  }

  // Mirror the job counters onto the obs bus for the metrics summary.
  obs::Registry& reg = cluster_.engine().obs();
  reg.Add(tags_.map_tasks, job.counters.map_tasks);
  reg.Add(tags_.reduce_tasks, job.counters.reduce_tasks);
  reg.Add(tags_.task_retries, job.counters.task_retries);
  reg.Add(tags_.spilled_bytes, job.counters.spilled_bytes);
  reg.Add(tags_.shuffled_bytes, job.counters.shuffled_bytes);

  JobResult result;
  result.elapsed = ctx.now() - job.submit_time;
  result.counters = job.counters;
  job.finished = true;
  job.on_done(result);
}

void MrEngine::SweepDeadWorkers(sim::Context& ctx, Job& job) {
  auto requeue_if_dead = [&](std::map<int, int>& running,
                             std::deque<int>& pending) {
    for (auto it = running.begin(); it != running.end();) {
      if (!cluster_.engine().IsAlive(job.worker_pids[it->second])) {
        pending.push_back(it->first);
        ++job.counters.task_retries;
        cluster_.engine().obs().Add(tags_.recovery_task_retries);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  };
  requeue_if_dead(job.running_maps, job.pending_maps);
  requeue_if_dead(job.running_reduces, job.pending_reduces);

  // Completed map outputs that lived on a now-failed node are lost; re-run
  // them unless the whole job is already past reduces needing them.
  for (auto it = job.done_maps.begin(); it != job.done_maps.end();) {
    auto out = job.map_outputs.find(*it);
    const bool lost =
        out == job.map_outputs.end() || cluster_.NodeFailed(out->second.node);
    if (lost && job.done_reduces.size() <
                    static_cast<std::size_t>(job.conf.num_reducers)) {
      job.map_outputs.erase(*it);
      job.pending_maps.push_back(*it);
      ++job.counters.task_retries;
      cluster_.engine().obs().Add(tags_.recovery_task_retries);
      it = job.done_maps.erase(it);
    } else {
      ++it;
    }
  }
  (void)ctx;
}

bool MrEngine::NoLiveWorkers(const Job& job) {
  for (sim::Pid pid : job.worker_pids) {
    if (cluster_.engine().IsAlive(pid)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

void MrEngine::WorkerMain(sim::Context& ctx, Job& job, int worker_id) {
  net::Endpoint& ep = job.network->endpoint(1 + worker_id);
  const buf::Bytes my_id = serde::EncodeToBytes<std::int32_t>(worker_id);
  for (;;) {
    ep.SendAsync(ctx, 0, kTagRequest, my_id);
    auto reply = ep.RecvWithTimeout(ctx, ctx.now() + 5 * options_.heartbeat, 0,
                                    kTagAssign);
    if (!reply.has_value()) {
      if (job.finished) return;
      continue;  // coordinator busy; ask again
    }
    const AssignMsg assign = DecodeAssign(reply->payload);
    switch (static_cast<AssignKind>(assign.kind)) {
      case AssignKind::kMap:
        RunMapTask(ctx, job, worker_id, assign.task_id);
        break;
      case AssignKind::kReduce:
        RunReduceTask(ctx, job, worker_id, assign.task_id);
        break;
      case AssignKind::kWait:
        ctx.SleepFor(0.2);
        break;
      case AssignKind::kExit:
        return;
    }
  }
}

void MrEngine::ChargeRecords(sim::Context& ctx, std::uint64_t records,
                             Bytes bytes, SimTime per_record) {
  const double inflate = 1.0 / cluster_.data_scale();
  ctx.Compute(inflate * (static_cast<double>(records) * per_record +
                         static_cast<double>(bytes) * options_.cpu_per_byte));
}

void MrEngine::RunMapTask(sim::Context& ctx, Job& job, int worker_id,
                          int map_id) {
  const int node = job.worker_nodes[worker_id];
  net::Endpoint& ep = job.network->endpoint(1 + worker_id);
  sim::Scope task_scope(ctx, tags_.map_task);
  ctx.SleepFor(options_.jvm_startup_per_task);

  auto block = [&] {
    sim::Scope read_scope(ctx, tags_.map_read, tags_.time_map_read);
    if (!job.split_source.empty()) {
      const auto& [path, index] =
          job.split_source[static_cast<std::size_t>(map_id)];
      return dfs_.ReadBlock(ctx, node, path, index);
    }
    return dfs_.ReadBlock(ctx, node, job.conf.input_path,
                          static_cast<std::size_t>(map_id));
  }();
  if (!block.ok()) {
    // Input gone (e.g., disk failure mid-read): die; the coordinator's
    // sweep requeues the task elsewhere. Matches Hadoop task failure.
    PSTK_WARN("mr") << "map " << map_id << " failed: "
                    << block.status().ToString();
    throw sim::ProcessKilled{};  // task attempt dies; coordinator requeues
  }

  // Map over every input line (a zero-copy view of the stored block).
  VectorEmitter collected;
  std::uint64_t records = 0;
  {
    sim::Scope map_scope(ctx, tags_.map_map, tags_.time_map);
    std::string_view rest = block.value().view();
    while (!rest.empty()) {
      const auto nl = rest.find('\n');
      const std::string_view line =
          nl == std::string_view::npos ? rest : rest.substr(0, nl);
      rest = nl == std::string_view::npos ? std::string_view{}
                                          : rest.substr(nl + 1);
      if (line.empty()) continue;
      ++records;
      job.map(std::string(line), collected);
    }
    ChargeRecords(ctx, records, block.value().size(),
                  options_.map_cpu_per_record);
  }
  job.counters.input_records += records;
  job.counters.map_output_records += collected.kvs.size();

  // Map-side combine *before* partitioning and sorting: one hash pass
  // groups all values per key (every key's values are complete within a
  // map task), the combiner shrinks them, and only the combined records
  // hit the sort. Values are sorted within each group so the combiner sees
  // the same grouped-and-ordered input Hadoop's sorted pipeline would give
  // it (and the spilled bytes are identical to combine-after-sort).
  const int R = job.conf.num_reducers;
  std::vector<KvVec> partitions(static_cast<std::size_t>(R));
  {
    sim::Scope sort_scope(ctx, tags_.map_sort, tags_.time_sort);
    if (job.combine.has_value() && !collected.kvs.empty()) {
      std::unordered_map<std::string, std::vector<std::string>> groups;
      groups.reserve(collected.kvs.size());
      for (auto& kv : collected.kvs) {
        groups[std::move(kv.first)].push_back(std::move(kv.second));
      }
      // Linear hash-aggregation pass over the pre-combine records.
      ChargeRecords(ctx, collected.kvs.size(), 0,
                    options_.sort_cpu_per_record);
      VectorEmitter combined;
      for (auto& [key, values] : groups) {
        std::sort(values.begin(), values.end());
        (*job.combine)(key, values, combined);
      }
      collected.kvs = std::move(combined.kvs);
    }
    for (auto& kv : collected.kvs) {
      partitions[HashKey(kv.first) % static_cast<std::size_t>(R)].push_back(
          std::move(kv));
    }
    std::uint64_t sort_records = 0;
    for (auto& partition : partitions) {
      std::sort(partition.begin(), partition.end());
      sort_records += partition.size();
    }
    const double log_factor =
        sort_records > 1 ? std::log2(static_cast<double>(sort_records)) : 1.0;
    ChargeRecords(ctx, static_cast<std::uint64_t>(
                           static_cast<double>(sort_records) * log_factor),
                  0, options_.sort_cpu_per_record);
  }

  // Spill the serialized partitions to local disk. Spill buffers are
  // immutable from here on: reducers fetch zero-copy aliases of them.
  Job::MapOutput output;
  output.node = node;
  {
    sim::Scope spill_scope(ctx, tags_.map_spill, tags_.time_spill);
    Bytes spilled = 0;
    for (auto& partition : partitions) {
      buf::Bytes buffer = serde::EncodeToBytes(partition);
      spilled += buffer.size();
      output.partitions.push_back(std::move(buffer));
    }
    const Bytes modeled_spill = cluster_.Modeled(spilled);
    const SimTime disk_done =
        cluster_.scratch_disk(node)->Write(modeled_spill, ctx.now());
    ctx.SleepUntil(disk_done);
    job.counters.spilled_bytes += modeled_spill;
  }
  job.map_outputs[map_id] = std::move(output);

  serde::Writer done;
  done.WriteRaw<std::int32_t>(map_id);
  ep.SendAsync(ctx, 0, kTagMapDone, done.TakeBuffer());
}

void MrEngine::RunReduceTask(sim::Context& ctx, Job& job, int worker_id,
                             int reduce_id) {
  const int node = job.worker_nodes[worker_id];
  net::Endpoint& ep = job.network->endpoint(1 + worker_id);
  sim::Scope task_scope(ctx, tags_.reduce_task);
  ctx.SleepFor(options_.jvm_startup_per_task);

  // Shuffle: fetch this reducer's bucket from every map output.
  KvVec merged;
  std::vector<std::int32_t> missing;
  Bytes fetched_bytes = 0;
  std::size_t fetched_outputs = 0;
  {
    sim::Scope shuffle_scope(ctx, tags_.reduce_shuffle, tags_.time_shuffle);
    for (const auto& [map_id, output] : job.map_outputs) {
      if (cluster_.NodeFailed(output.node)) {
        missing.push_back(map_id);
        continue;
      }
      const buf::Bytes& bucket =
          output.partitions[static_cast<std::size_t>(reduce_id)];
      const Bytes modeled = cluster_.Modeled(bucket.size());
      SimTime t = cluster_.scratch_disk(output.node)->Read(modeled, ctx.now());
      if (output.node != node) {
        const auto times = fabric_->Transfer(output.node, node, modeled, t);
        ctx.Compute(times.receiver_cpu);
        t = times.arrival;
      }
      ctx.SleepUntil(t);
      fetched_bytes += modeled;
      ++fetched_outputs;
      auto kvs = serde::DecodeFromBytes<KvVec>(bucket);
      PSTK_CHECK_MSG(kvs.ok(), "corrupt map output");
      merged.insert(merged.end(), kvs.value().begin(), kvs.value().end());
    }
  }
  job.counters.shuffled_bytes += fetched_bytes;

  if (!missing.empty() || fetched_outputs != job.split_locations.size()) {
    // Some outputs are gone (node died after its maps completed).
    serde::Writer fail;
    fail.WriteRaw<std::int32_t>(reduce_id);
    fail.WriteVarint(missing.size());
    for (std::int32_t id : missing) fail.WriteRaw<std::int32_t>(id);
    ep.SendAsync(ctx, 0, kTagFetchFail, fail.TakeBuffer());
    return;
  }

  // Merge (sort) — Hadoop does an on-disk multi-way merge: one pass of
  // write+read of the full bucket set on local disk plus sort CPU.
  {
    sim::Scope merge_scope(ctx, tags_.reduce_merge, tags_.time_merge);
    SimTime t = cluster_.scratch_disk(node)->Write(fetched_bytes, ctx.now());
    t = cluster_.scratch_disk(node)->Read(fetched_bytes, t);
    ctx.SleepUntil(t);
    std::sort(merged.begin(), merged.end());
    const double log_factor =
        merged.size() > 1 ? std::log2(static_cast<double>(merged.size()))
                          : 1.0;
    ChargeRecords(ctx, static_cast<std::uint64_t>(
                           static_cast<double>(merged.size()) * log_factor),
                  0, options_.sort_cpu_per_record);
  }

  // Reduce.
  LineEmitter out;
  {
    sim::Scope reduce_scope(ctx, tags_.reduce_reduce, tags_.time_reduce);
    GroupAndApply(merged, job.reduce, out);
    ChargeRecords(ctx, merged.size(), 0, options_.map_cpu_per_record);
  }
  job.counters.reduce_output_records += out.count;

  if (job.conf.write_output) {
    sim::Scope output_scope(ctx, tags_.reduce_output, tags_.time_output);
    const std::string path = job.conf.output_path + "/part-r-" +
                             std::to_string(reduce_id);
    // Ownership handover: the reducer's output string becomes the stored
    // file content without a copy.
    const Status written =
        dfs_.Write(ctx, node, path, buf::Bytes::FromString(std::move(out.lines)));
    if (!written.ok()) {
      PSTK_WARN("mr") << "reduce " << reduce_id
                      << " output write failed: " << written.ToString();
      throw sim::ProcessKilled{};  // task attempt dies; coordinator requeues
    }
  }

  serde::Writer done;
  done.WriteRaw<std::int32_t>(reduce_id);
  ep.SendAsync(ctx, 0, kTagReduceDone, done.TakeBuffer());
}

}  // namespace pstk::mr
