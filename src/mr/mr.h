// MiniMR: a Hadoop-MapReduce-like engine on the simulated cluster.
//
// Structural fidelity to stock Hadoop 2.x (what the paper benchmarks):
//  * input splits = MiniDFS blocks, map tasks scheduled with locality
//    preference, bounded by per-node task slots;
//  * every task pays a JVM launch cost (Hadoop starts a JVM per task —
//    the big constant the paper's Fig 4 Hadoop-vs-Spark gap comes from);
//  * map outputs are partitioned, sorted, optionally combined, and
//    *spilled to local disk*; reducers shuffle them over sockets, merge on
//    disk, reduce, and write to the DFS — "Hadoop relies heavily on disk
//    operations and persists intermediate results on disk" (§V-C);
//  * failed tasks are re-executed automatically, including re-running
//    completed map tasks whose host died before reducers fetched them.
//
// The API is deliberately Hadoop-shaped: a JobConf, a Mapper over input
// lines emitting (key, value) pairs, an optional Combiner, and a Reducer
// over (key, grouped values).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"
#include "dfs/dfs.h"
#include "net/network.h"
#include "sim/engine.h"

namespace pstk::mr {

/// Collector handed to map/combine/reduce functions.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

using MapFn =
    std::function<void(const std::string& line, Emitter& out)>;
/// reduce(key, values, out) — also used as the combiner signature.
using ReduceFn = std::function<void(
    const std::string& key, const std::vector<std::string>& values,
    Emitter& out)>;

struct JobConf {
  std::string name = "mr-job";
  std::string input_path;      // MiniDFS file, or a directory of files
                               // (e.g. a previous job's output_path)
  std::string output_path;     // MiniDFS directory; part-r-<N> files
  int num_reducers = 1;
  int max_attempts = 4;        // per task
  bool write_output = true;    // benchmarks may skip the DFS write
  /// Explicit worker->node placement (one worker per entry), overriding the
  /// nodes x slots_per_node grid; set by pstk::sched's elastic placement.
  std::vector<int> worker_nodes;
  /// Node hosting the coordinator (ApplicationMaster).
  int coordinator_node = 0;
};

struct MrOptions {
  /// Hadoop launches one JVM per task.
  SimTime jvm_startup_per_task = Seconds(1.2);
  /// Job submission + ApplicationMaster launch.
  SimTime job_setup = Seconds(2.0);
  /// CPU cost per input record in map (JVM interpretation overhead baked in).
  SimTime map_cpu_per_record = Nanos(150);
  /// CPU per byte through the MR record pipeline (Text objects,
  /// context.write, serialization): ~25 MB/s per core, Hadoop-2-era text
  /// job throughput.
  SimTime cpu_per_byte = 1.0 / 25e6;
  /// Sort cost per record per merge level.
  SimTime sort_cpu_per_record = Nanos(80);
  /// Concurrent task slots per node (Hadoop: containers).
  int slots_per_node = 8;
  /// Hadoop shuffles over sockets, never RDMA.
  net::TransportParams transport = net::TransportParams::IPoIB();
  /// Coordinator poll period for dead-worker detection.
  SimTime heartbeat = Seconds(1.0);
};

struct Counters {
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t reduce_output_records = 0;
  Bytes spilled_bytes = 0;    // modeled, to local disks
  Bytes shuffled_bytes = 0;   // modeled, over the network
};

struct JobResult {
  SimTime elapsed = 0;   // submission to job completion
  Counters counters;
};

class MrEngine {
 public:
  struct Job;  // internal coordinator state; opaque to callers
  /// Opaque handle to a submitted job, usable for elastic grow/shrink.
  using JobHandle = std::shared_ptr<Job>;

  MrEngine(cluster::Cluster& cluster, dfs::MiniDfs& dfs, MrOptions options = {});

  /// Submit and run a job to completion inside the current engine run.
  /// Spawns the coordinator + per-slot worker processes; the caller runs
  /// the engine (or use RunJob for the common standalone case).
  JobHandle Submit(JobConf conf, MapFn map, ReduceFn reduce,
                   std::optional<ReduceFn> combine,
                   std::function<void(Result<JobResult>)> on_done);

  /// Convenience: submit + engine.Run() and return the outcome.
  Result<JobResult> RunJob(JobConf conf, MapFn map, ReduceFn reduce,
                           std::optional<ReduceFn> combine = std::nullopt);

  /// Elastic growth: add one worker (container) on `node` to a running
  /// job. The worker joins the pull loop immediately; returns its id.
  int AddWorker(const JobHandle& job, int node);
  /// Elastic shrink: kill worker `worker_id`. Its running task is requeued
  /// by the coordinator's dead-worker sweep.
  void KillWorker(const JobHandle& job, int worker_id);
  [[nodiscard]] static bool JobFinished(const JobHandle& job);

  [[nodiscard]] const MrOptions& options() const { return options_; }

 private:

  void CoordinatorMain(sim::Context& ctx, Job& job);
  void WorkerMain(sim::Context& ctx, Job& job, int worker_id);
  void RunMapTask(sim::Context& ctx, Job& job, int worker_id, int map_id);
  void RunReduceTask(sim::Context& ctx, Job& job, int worker_id,
                     int reduce_id);
  void SweepDeadWorkers(sim::Context& ctx, Job& job);
  bool NoLiveWorkers(const Job& job);
  /// CPU charge for `records`/`bytes` of actual data, inflated to logical
  /// scale.
  void ChargeRecords(sim::Context& ctx, std::uint64_t records, Bytes bytes,
                     SimTime per_record);

  cluster::Cluster& cluster_;
  dfs::MiniDfs& dfs_;
  MrOptions options_;
  std::shared_ptr<net::Fabric> fabric_;
  int job_seq_ = 0;

  struct MrTags {
    // Task and phase spans (Chrome trace).
    obs::TagId map_task = obs::kNoTag;
    obs::TagId reduce_task = obs::kNoTag;
    obs::TagId map_read = obs::kNoTag;
    obs::TagId map_map = obs::kNoTag;
    obs::TagId map_sort = obs::kNoTag;
    obs::TagId map_spill = obs::kNoTag;
    obs::TagId reduce_shuffle = obs::kNoTag;
    obs::TagId reduce_merge = obs::kNoTag;
    obs::TagId reduce_reduce = obs::kNoTag;
    obs::TagId reduce_output = obs::kNoTag;
    // Per-phase elapsed-virtual-time histograms (seconds).
    obs::TagId time_map_read = obs::kNoTag;
    obs::TagId time_map = obs::kNoTag;
    obs::TagId time_sort = obs::kNoTag;
    obs::TagId time_spill = obs::kNoTag;
    obs::TagId time_shuffle = obs::kNoTag;
    obs::TagId time_merge = obs::kNoTag;
    obs::TagId time_reduce = obs::kNoTag;
    obs::TagId time_output = obs::kNoTag;
    // Job counters mirrored from Counters at completion.
    obs::TagId map_tasks = obs::kNoTag;
    obs::TagId reduce_tasks = obs::kNoTag;
    obs::TagId task_retries = obs::kNoTag;
    obs::TagId recovery_task_retries = obs::kNoTag;  // live (not job-end)
    obs::TagId spilled_bytes = obs::kNoTag;
    obs::TagId shuffled_bytes = obs::kNoTag;
  };
  MrTags tags_;
};

}  // namespace pstk::mr
