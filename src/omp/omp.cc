#include "omp/omp.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::omp {

// ---------------------------------------------------------------------------
// ThreadCtx
// ---------------------------------------------------------------------------

void ThreadCtx::Barrier() { runtime_.RegionBarrier(); }

void ThreadCtx::Critical(const std::function<void()>& body) {
  std::lock_guard<std::mutex> lock(runtime_.critical_mu_);
  body();
}

void ThreadCtx::Single(const std::function<void()>& body) {
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(runtime_.single_mu_);
    // Every thread executes the same sequence of Single constructs; the
    // first to arrive at instance k claims it.
    ++single_count_;
    if (runtime_.single_done_epoch_ < single_count_) {
      runtime_.single_done_epoch_ = single_count_;
      winner = true;
    }
  }
  if (winner) body();
  Barrier();  // implicit barrier at the end of single
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

void TaskGroup::Run(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(runtime_.mu_);
    runtime_.tasks_.emplace_back(this, std::move(task));
  }
  runtime_.work_cv_.notify_one();
}

void TaskGroup::Wait() { runtime_.DrainTasks(*this); }

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(int num_threads)
    : num_threads_(num_threads > 0
                       ? num_threads
                       : static_cast<int>(std::max(
                             1u, std::thread::hardware_concurrency()))) {
  // The calling thread acts as thread 0; spawn the rest.
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int tid = 1; tid < num_threads_; ++tid) {
    workers_.emplace_back([this, tid] { WorkerLoop(tid); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Runtime::WorkerLoop(int tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return shutdown_ || region_epoch_ != seen_epoch || !tasks_.empty();
    });
    if (shutdown_) return;
    if (region_epoch_ != seen_epoch) {
      seen_epoch = region_epoch_;
      const auto* body = region_body_;
      lock.unlock();
      ThreadCtx ctx(*this, tid, num_threads_);
      (*body)(ctx);
      lock.lock();
      if (--region_active_ == 0) done_cv_.notify_all();
      continue;
    }
    if (!tasks_.empty()) {
      auto [group, task] = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();
      if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done_cv_.notify_all();
      }
    }
  }
}

void Runtime::Parallel(const std::function<void(ThreadCtx&)>& body) {
  PSTK_CHECK_MSG(region_body_ == nullptr,
                 "nested parallel regions are not supported");
  if (num_threads_ == 1) {
    single_done_epoch_ = 0;
    ThreadCtx ctx(*this, 0, 1);
    body(ctx);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_body_ = &body;
    region_active_ = num_threads_ - 1;
    single_done_epoch_ = 0;
    ++region_epoch_;
  }
  work_cv_.notify_all();

  ThreadCtx ctx(*this, 0, num_threads_);
  body(ctx);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return region_active_ == 0; });
  region_body_ = nullptr;
}

void Runtime::RegionBarrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_waiting_ == num_threads_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

void Runtime::DrainTasks(TaskGroup& group) {
  for (;;) {
    if (group.pending_.load(std::memory_order_acquire) == 0) return;
    std::unique_lock<std::mutex> lock(mu_);
    if (!tasks_.empty()) {
      auto [owner, task] = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();
      if (owner->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done_cv_.notify_all();
      }
      continue;
    }
    // Queue empty but tasks of our group still in flight on workers.
    done_cv_.wait(lock, [&] {
      return group.pending_.load(std::memory_order_acquire) == 0 ||
             !tasks_.empty();
    });
  }
}

void Runtime::RunWorksharing(
    std::int64_t begin, std::int64_t end, Schedule schedule,
    std::int64_t chunk,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  const std::int64_t total = end - begin;
  const auto nthreads = static_cast<std::int64_t>(num_threads_);

  switch (schedule) {
    case Schedule::kStatic: {
      if (chunk <= 0) {
        // One contiguous slice per thread.
        Parallel([&](ThreadCtx& ctx) {
          const std::int64_t tid = ctx.thread_num();
          const std::int64_t base = total / nthreads;
          const std::int64_t extra = total % nthreads;
          const std::int64_t lo =
              begin + tid * base + std::min<std::int64_t>(tid, extra);
          const std::int64_t len = base + (tid < extra ? 1 : 0);
          if (len > 0) fn(ctx.thread_num(), lo, lo + len);
        });
      } else {
        // Round-robin chunks of the given size.
        Parallel([&](ThreadCtx& ctx) {
          for (std::int64_t lo = begin + ctx.thread_num() * chunk; lo < end;
               lo += nthreads * chunk) {
            fn(ctx.thread_num(), lo, std::min(end, lo + chunk));
          }
        });
      }
      break;
    }
    case Schedule::kDynamic: {
      const std::int64_t step = std::max<std::int64_t>(1, chunk);
      std::atomic<std::int64_t> next{begin};
      Parallel([&](ThreadCtx& ctx) {
        for (;;) {
          const std::int64_t lo =
              next.fetch_add(step, std::memory_order_relaxed);
          if (lo >= end) break;
          fn(ctx.thread_num(), lo, std::min(end, lo + step));
        }
      });
      break;
    }
    case Schedule::kGuided: {
      const std::int64_t min_chunk = std::max<std::int64_t>(1, chunk);
      std::atomic<std::int64_t> next{begin};
      Parallel([&](ThreadCtx& ctx) {
        for (;;) {
          std::int64_t lo = next.load(std::memory_order_relaxed);
          std::int64_t take;
          do {
            if (lo >= end) return;
            const std::int64_t remaining = end - lo;
            take = std::max(min_chunk, remaining / (2 * nthreads));
            take = std::min(take, remaining);
          } while (!next.compare_exchange_weak(lo, lo + take,
                                               std::memory_order_relaxed));
          fn(ctx.thread_num(), lo, lo + take);
        }
      });
      break;
    }
  }
}

void Runtime::ParallelFor(std::int64_t begin, std::int64_t end,
                          const std::function<void(std::int64_t)>& body,
                          Schedule schedule, std::int64_t chunk) {
  RunWorksharing(begin, end, schedule, chunk,
                 [&](int, std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t i = lo; i < hi; ++i) body(i);
                 });
}

void Runtime::ParallelForRanges(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    Schedule schedule, std::int64_t chunk) {
  RunWorksharing(
      begin, end, schedule, chunk,
      [&](int, std::int64_t lo, std::int64_t hi) { body(lo, hi); });
}

}  // namespace pstk::omp
