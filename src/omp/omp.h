// MiniOMP: a real shared-memory work-sharing runtime in the spirit of the
// OpenMP constructs the paper surveys (§II-A): parallel regions with thread
// ids and barriers, worksharing loops with static/dynamic/guided schedules,
// reductions, single/critical, and explicit tasks.
//
// Unlike the other runtimes in this repository, MiniOMP executes on *real*
// OS threads and wall-clock time — it is the paper's single-node baseline
// ("OpenMP can only run on a single node", §V-C). The cluster benchmarks
// combine its real execution with the simulated node's cost model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pstk::omp {

enum class Schedule { kStatic, kDynamic, kGuided };

class Runtime;

/// Per-thread view inside a parallel region (omp_get_thread_num & friends).
class ThreadCtx {
 public:
  [[nodiscard]] int thread_num() const { return thread_num_; }
  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// #pragma omp barrier — all threads of the region must call it.
  void Barrier();

  /// #pragma omp critical — serialized across the region.
  void Critical(const std::function<void()>& body);

  /// #pragma omp single — body runs on exactly one thread; implies a
  /// barrier afterwards.
  void Single(const std::function<void()>& body);

 private:
  friend class Runtime;
  ThreadCtx(Runtime& runtime, int thread_num, int num_threads)
      : runtime_(runtime), thread_num_(thread_num), num_threads_(num_threads) {}
  Runtime& runtime_;
  int thread_num_;
  int num_threads_;
  std::uint64_t single_count_ = 0;  // how many Single sites this thread hit
};

/// A group of explicit tasks (#pragma omp task ... taskwait). Tasks may
/// spawn nested tasks into the same group; Wait() participates in
/// execution until the group drains.
class TaskGroup {
 public:
  explicit TaskGroup(Runtime& runtime) : runtime_(runtime) {}
  ~TaskGroup() { Wait(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue a task; any worker (or the waiter) may run it.
  void Run(std::function<void()> task);
  /// Block until every task (incl. nested ones) has finished.
  void Wait();

 private:
  friend class Runtime;
  Runtime& runtime_;
  std::atomic<std::int64_t> pending_{0};
};

class Runtime {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency.
  explicit Runtime(int num_threads = 0);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// #pragma omp parallel — run body(ctx) on every thread and join.
  void Parallel(const std::function<void(ThreadCtx&)>& body);

  /// #pragma omp parallel for schedule(...) — body(i) per iteration.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& body,
                   Schedule schedule = Schedule::kStatic,
                   std::int64_t chunk = 0);

  /// Blocked variant: body(lo, hi) per chunk — preferred for tight loops.
  void ParallelForRanges(
      std::int64_t begin, std::int64_t end,
      const std::function<void(std::int64_t, std::int64_t)>& body,
      Schedule schedule = Schedule::kStatic, std::int64_t chunk = 0);

  /// #pragma omp parallel for reduction(...): `map(lo, hi)` produces a
  /// partial value per chunk; `combine` folds partials (associative).
  template <typename T>
  T ParallelReduce(std::int64_t begin, std::int64_t end, T identity,
                   const std::function<T(std::int64_t, std::int64_t)>& map,
                   const std::function<T(T, T)>& combine,
                   Schedule schedule = Schedule::kStatic,
                   std::int64_t chunk = 0) {
    std::vector<T> partials(static_cast<std::size_t>(num_threads_), identity);
    RunWorksharing(begin, end, schedule, chunk,
                   [&](int tid, std::int64_t lo, std::int64_t hi) {
                     partials[static_cast<std::size_t>(tid)] = combine(
                         partials[static_cast<std::size_t>(tid)], map(lo, hi));
                   });
    T result = identity;
    for (const T& partial : partials) result = combine(result, partial);
    return result;
  }

 private:
  friend class ThreadCtx;
  friend class TaskGroup;

  /// Dispatch [begin,end) chunks to threads; fn(tid, lo, hi).
  void RunWorksharing(
      std::int64_t begin, std::int64_t end, Schedule schedule,
      std::int64_t chunk,
      const std::function<void(int, std::int64_t, std::int64_t)>& fn);

  void WorkerLoop(int tid);
  void RegionBarrier();
  /// Run queued tasks until `group` drains (used by TaskGroup::Wait).
  void DrainTasks(TaskGroup& group);

  int num_threads_;
  std::vector<std::thread> workers_;

  // Parallel-region dispatch state.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(ThreadCtx&)>* region_body_ = nullptr;
  std::uint64_t region_epoch_ = 0;
  int region_active_ = 0;
  bool shutdown_ = false;

  // In-region barrier (sense-reversing).
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Critical-section lock and single-construct bookkeeping.
  std::mutex critical_mu_;
  std::mutex single_mu_;
  std::uint64_t single_epoch_ = 0;
  std::uint64_t single_done_epoch_ = 0;

  // Task queue (shared by all workers).
  std::mutex task_mu_;
  std::condition_variable task_cv_;
  std::deque<std::pair<TaskGroup*, std::function<void()>>> tasks_;
};

}  // namespace pstk::omp
