// Cluster assembly: node specifications, the Comet preset (paper Table I),
// and the wiring of engine + fabrics + per-node disks/filesystems that all
// runtimes (MiniMPI, MiniSHMEM, MiniMR, MiniSpark) share.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "net/fabric.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "storage/disk.h"
#include "storage/localfs.h"

namespace pstk::cluster {

struct NodeSpec {
  int cores = 24;                 // 2 sockets x 12 cores
  double clock_ghz = 2.5;
  double peak_flops = 960e9;      // Table I: 960 GFlop/s
  Bytes memory = 128 * kGiB;      // DDR4 DRAM
  Bytes scratch_capacity = 320 * kGiB;
  storage::DiskParams scratch = storage::DiskParams::CometScratchSsd();
};

struct ClusterSpec {
  std::string name = "cluster";
  std::size_t nodes = 8;
  NodeSpec node;
  /// Default interconnect transport for fabrics created on demand.
  net::TransportParams transport = net::TransportParams::RdmaFdr();

  /// SDSC Comet (Table I): Xeon E5-2680v3, FDR InfiniBand hybrid fat-tree,
  /// 320 GB local SSD scratch.
  static ClusterSpec Comet(std::size_t nodes);
};

/// Owns the simulated hardware of one cluster run.
class Cluster {
 public:
  /// `data_scale` in (0,1]: benchmarks stage data at actual = logical *
  /// data_scale and every cost model charges logical (modeled) bytes.
  Cluster(sim::Engine& engine, ClusterSpec spec, double data_scale = 1.0);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] int nodes() const { return static_cast<int>(spec_.nodes); }
  [[nodiscard]] int cores_per_node() const { return spec_.node.cores; }
  [[nodiscard]] double data_scale() const { return data_scale_; }
  [[nodiscard]] Bytes Modeled(Bytes actual) const {
    return static_cast<Bytes>(static_cast<double>(actual) / data_scale_);
  }

  /// The fabric for the cluster's default transport.
  [[nodiscard]] std::shared_ptr<net::Fabric> fabric();
  /// A fabric over a specific transport (created on first use). Fabrics for
  /// different transports have independent NIC timelines — a simplification
  /// documented in DESIGN.md.
  [[nodiscard]] std::shared_ptr<net::Fabric> fabric(
      const net::TransportParams& transport);

  /// Per-node scratch filesystem (the paper's local SSD scratch).
  [[nodiscard]] storage::LocalFs& scratch(int node);
  [[nodiscard]] std::shared_ptr<storage::Disk> scratch_disk(int node);

  /// Time to execute `flops` floating-point work on `threads` cores of one
  /// node (simple linear model with a parallel-efficiency knee).
  [[nodiscard]] SimTime ComputeTime(double flops, int threads = 1) const;

  /// Fault injection: at virtual time `t`, fail the node's disk and kill
  /// every process placed on it.
  void FailNode(int node, SimTime t);
  /// Repair: at virtual time `t`, the node (and its disk) comes back.
  /// Processes killed by the failure are NOT respawned — that is runtime
  /// policy (e.g. Spark's executor reacquisition, MPI's restart manager).
  void RestoreNode(int node, SimTime t);
  [[nodiscard]] bool NodeFailed(int node) const { return failed_[node]; }

  /// Schedule every event of a fault plan (failures and, for transient
  /// events, the matching repairs).
  void ApplyFaultPlan(const sim::FaultPlan& plan);

  /// Subscribe to node state changes; callbacks fire inside the scheduled
  /// fail/restore event, after the cluster state flipped. MiniDFS uses the
  /// failure hook for re-replication; ckpt::RestartManager uses it to drop
  /// snapshot copies hosted on the lost node.
  using NodeEventCallback = std::function<void(int node, SimTime t)>;
  void SubscribeNodeFailure(NodeEventCallback callback);
  void SubscribeNodeRestore(NodeEventCallback callback);

  // --- Core occupancy -------------------------------------------------------
  // Nodes are allocatable at per-core granularity so several jobs can share a
  // node (pstk::sched's elastic placement) while gang placement still gets
  // whole nodes by reserving all cores. Bookkeeping is per (owner, node) so
  // over-release and release-twice are hard errors, not silent corruption.

  /// Reserve `count` cores on `node` for `owner`. All-or-nothing: returns
  /// false (reserving nothing) if fewer than `count` cores are free or the
  /// node is down.
  [[nodiscard]] bool ReserveCores(int node, int count, int owner);
  /// Release `count` of `owner`'s cores on `node`. PSTK_CHECKs that the owner
  /// actually holds that many (catches double-release).
  void ReleaseCores(int node, int count, int owner);
  /// Release everything `owner` holds, across all nodes.
  void ReleaseAllCores(int owner);
  /// Cores not currently reserved on `node` (0 if the node is down).
  [[nodiscard]] int FreeCores(int node) const;
  /// Cores reserved by `owner` on `node`.
  [[nodiscard]] int CoresHeldBy(int owner, int node) const;
  /// Total reserved cores across the cluster (failed nodes included — a
  /// failed node's reservations persist until the owner releases them).
  [[nodiscard]] int UsedCores() const;
  [[nodiscard]] int TotalCores() const {
    return nodes() * cores_per_node();
  }

 private:
  sim::Engine& engine_;
  ClusterSpec spec_;
  double data_scale_;
  std::map<std::string, std::shared_ptr<net::Fabric>> fabrics_;
  std::vector<std::shared_ptr<storage::Disk>> disks_;
  std::vector<std::unique_ptr<storage::LocalFs>> scratch_;
  std::vector<bool> failed_;
  std::vector<NodeEventCallback> on_failure_;
  std::vector<NodeEventCallback> on_restore_;
  std::vector<int> used_cores_;                    // per node
  std::map<std::pair<int, int>, int> held_cores_;  // (owner, node) -> count
};

}  // namespace pstk::cluster
