#include "cluster/cluster.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace pstk::cluster {

ClusterSpec ClusterSpec::Comet(std::size_t nodes) {
  ClusterSpec spec;
  spec.name = "comet";
  spec.nodes = nodes;
  spec.node = NodeSpec{};  // defaults are the Comet values
  spec.transport = net::TransportParams::RdmaFdr();
  return spec;
}

Cluster::Cluster(sim::Engine& engine, ClusterSpec spec, double data_scale)
    : engine_(engine), spec_(std::move(spec)), data_scale_(data_scale) {
  PSTK_CHECK_MSG(spec_.nodes >= 1, "cluster needs at least one node");
  PSTK_CHECK_MSG(data_scale_ > 0 && data_scale_ <= 1.0,
                 "data_scale must be in (0,1], got " << data_scale_);
  disks_.reserve(spec_.nodes);
  scratch_.reserve(spec_.nodes);
  failed_.assign(spec_.nodes, false);
  used_cores_.assign(spec_.nodes, 0);
  for (std::size_t i = 0; i < spec_.nodes; ++i) {
    disks_.push_back(std::make_shared<storage::Disk>(spec_.node.scratch));
    disks_.back()->AttachObs(&engine_.obs(), "storage.scratch");
    scratch_.push_back(
        std::make_unique<storage::LocalFs>(disks_.back(), data_scale_));
  }
}

std::shared_ptr<net::Fabric> Cluster::fabric() {
  return fabric(spec_.transport);
}

std::shared_ptr<net::Fabric> Cluster::fabric(
    const net::TransportParams& transport) {
  auto it = fabrics_.find(transport.name);
  if (it != fabrics_.end()) return it->second;
  auto fabric = std::make_shared<net::Fabric>(spec_.nodes, transport);
  fabric->AttachObs(&engine_.obs());
  fabrics_.emplace(transport.name, fabric);
  return fabric;
}

storage::LocalFs& Cluster::scratch(int node) {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  return *scratch_[node];
}

std::shared_ptr<storage::Disk> Cluster::scratch_disk(int node) {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  return disks_[node];
}

SimTime Cluster::ComputeTime(double flops, int threads) const {
  PSTK_CHECK(threads >= 1);
  const int usable = std::min(threads, spec_.node.cores);
  const double per_core = spec_.node.peak_flops /
                          static_cast<double>(spec_.node.cores);
  // Mild parallel-efficiency decay: 2% loss per extra core engaged.
  const double efficiency =
      1.0 / (1.0 + 0.02 * static_cast<double>(usable - 1));
  return flops / (per_core * static_cast<double>(usable) * efficiency);
}

void Cluster::FailNode(int node, SimTime t) {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  // Routed to the shard that owns `node`: the event touches that shard's
  // processes (KillNow), which a foreign shard must never do directly.
  engine_.ScheduleEventFor(node, t, [this, node] {
    if (failed_[node]) return;
    failed_[node] = true;
    disks_[node]->set_failed(true);
    for (sim::Pid pid : engine_.AlivePidsOnNode(node)) {
      engine_.KillNow(pid);
    }
    PSTK_INFO("cluster") << spec_.name << ": node " << node << " failed at t="
                         << engine_.now();
    for (const NodeEventCallback& callback : on_failure_) {
      callback(node, engine_.now());
    }
  });
}

void Cluster::RestoreNode(int node, SimTime t) {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  engine_.ScheduleEventFor(node, t, [this, node] {
    if (!failed_[node]) return;
    failed_[node] = false;
    disks_[node]->set_failed(false);
    PSTK_INFO("cluster") << spec_.name << ": node " << node
                         << " restored at t=" << engine_.now();
    for (const NodeEventCallback& callback : on_restore_) {
      callback(node, engine_.now());
    }
  });
}

void Cluster::ApplyFaultPlan(const sim::FaultPlan& plan) {
  for (const sim::FaultEvent& event : plan.events) {
    FailNode(event.node, event.time);
    if (event.transient()) RestoreNode(event.node, event.time + event.down_for);
  }
}

bool Cluster::ReserveCores(int node, int count, int owner) {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  PSTK_CHECK_MSG(count > 0, "reserve count must be positive, got " << count);
  if (failed_[node]) return false;
  if (used_cores_[node] + count > cores_per_node()) return false;
  used_cores_[node] += count;
  held_cores_[{owner, node}] += count;
  return true;
}

void Cluster::ReleaseCores(int node, int count, int owner) {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  PSTK_CHECK_MSG(count > 0, "release count must be positive, got " << count);
  auto it = held_cores_.find({owner, node});
  PSTK_CHECK_MSG(it != held_cores_.end() && it->second >= count,
                 "owner " << owner << " releases " << count << " cores on node "
                          << node << " but holds "
                          << (it == held_cores_.end() ? 0 : it->second));
  it->second -= count;
  if (it->second == 0) held_cores_.erase(it);
  used_cores_[node] -= count;
}

void Cluster::ReleaseAllCores(int owner) {
  for (auto it = held_cores_.lower_bound({owner, 0});
       it != held_cores_.end() && it->first.first == owner;) {
    used_cores_[it->first.second] -= it->second;
    it = held_cores_.erase(it);
  }
}

int Cluster::FreeCores(int node) const {
  PSTK_CHECK_MSG(node >= 0 && node < nodes(), "bad node " << node);
  if (failed_[node]) return 0;
  return cores_per_node() - used_cores_[node];
}

int Cluster::CoresHeldBy(int owner, int node) const {
  auto it = held_cores_.find({owner, node});
  return it == held_cores_.end() ? 0 : it->second;
}

int Cluster::UsedCores() const {
  int total = 0;
  for (int used : used_cores_) total += used;
  return total;
}

void Cluster::SubscribeNodeFailure(NodeEventCallback callback) {
  on_failure_.push_back(std::move(callback));
}

void Cluster::SubscribeNodeRestore(NodeEventCallback callback) {
  on_restore_.push_back(std::move(callback));
}

}  // namespace pstk::cluster
