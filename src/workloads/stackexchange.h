// Synthetic StackExchange post dataset (the paper's AnswersCount input).
//
// The real benchmark used an 80 GB text dump of stackexchange.com posts and
// computed the average number of answers per question. The generator
// produces the same record mix: tab-separated post lines, each either a
// question or an answer referencing a question, with power-law answer
// counts and variable body lengths — enough structure for the counting
// kernel to be non-trivial while byte volume drives the I/O cost.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/units.h"

namespace pstk::workloads {

struct StackExchangeParams {
  Bytes target_bytes = 8 * kMiB;  // actual staged bytes to generate
  double answers_per_question = 2.6;  // mean of the power-law
  std::size_t min_body = 40;
  std::size_t max_body = 220;
  std::uint64_t seed = 20160926;  // CLUSTER'16 vintage
};

struct StackExchangeStats {
  std::uint64_t questions = 0;
  std::uint64_t answers = 0;
  Bytes bytes = 0;
  [[nodiscard]] double AverageAnswers() const {
    return questions == 0 ? 0.0
                          : static_cast<double>(answers) /
                                static_cast<double>(questions);
  }
};

/// Generate the dataset; returns the text and fills `stats` (ground truth
/// for verifying the frameworks' answers).
std::string GenerateStackExchange(const StackExchangeParams& params,
                                  StackExchangeStats* stats);

/// Record kind of one line of the dataset.
enum class PostKind : std::uint8_t { kQuestion, kAnswer, kOther };
PostKind ClassifyPost(std::string_view line);

/// The AnswersCount kernel over a text fragment: counts questions and
/// answers in whole lines of `text` (used by the OpenMP/MPI versions which
/// work on raw byte ranges; `skip_partial_first` implements the usual
/// "skip to the first newline" convention for non-initial chunks).
StackExchangeStats CountPosts(std::string_view text,
                              bool skip_partial_first = false);

}  // namespace pstk::workloads
