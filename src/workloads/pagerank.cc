#include "workloads/pagerank.h"

#include <cmath>

#include "common/check.h"

namespace pstk::workloads {

std::vector<double> PageRankReference(const Graph& graph, int iterations) {
  std::vector<double> ranks(graph.vertices, 1.0);
  std::vector<double> contrib(graph.vertices, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(contrib.begin(), contrib.end(), 0.0);
    for (VertexId v = 0; v < graph.vertices; ++v) {
      const std::size_t degree = graph.out_degree(v);
      if (degree == 0) continue;
      const double share = ranks[v] / static_cast<double>(degree);
      for (std::uint64_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
        contrib[graph.targets[e]] += share;
      }
    }
    for (VertexId v = 0; v < graph.vertices; ++v) {
      ranks[v] = kBaseRank + kDamping * contrib[v];
    }
  }
  return ranks;
}

double MaxRankDelta(const std::vector<double>& a,
                    const std::vector<double>& b) {
  PSTK_CHECK(a.size() == b.size());
  double max_delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_delta = std::max(max_delta, std::fabs(a[i] - b[i]));
  }
  return max_delta;
}

}  // namespace pstk::workloads
