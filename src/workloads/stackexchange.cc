#include "workloads/stackexchange.h"

#include <algorithm>

namespace pstk::workloads {

namespace {
constexpr std::string_view kLorem =
    "how do i convert a vector of strings into a map when the keys repeat "
    "and the values must be aggregated across threads without locking the "
    "whole container every time a worker finishes processing its chunk ";
}

std::string GenerateStackExchange(const StackExchangeParams& params,
                                  StackExchangeStats* stats) {
  Rng rng(params.seed);
  std::string out;
  out.reserve(params.target_bytes + 4 * kKiB);
  StackExchangeStats local;

  std::uint64_t next_id = 1;
  auto body = [&](std::size_t length) {
    std::string text;
    const std::size_t offset = rng.Below(kLorem.size());
    while (text.size() < length) {
      const std::size_t take =
          std::min(length - text.size(), kLorem.size() - offset % kLorem.size());
      text.append(kLorem.substr(offset % kLorem.size(), take));
    }
    std::replace(text.begin(), text.end(), '\t', ' ');
    return text;
  };

  while (out.size() < params.target_bytes) {
    const std::uint64_t question_id = next_id++;
    const std::size_t len =
        params.min_body + rng.Below(params.max_body - params.min_body + 1);
    out += std::to_string(question_id);
    out += "\tQ\t0\t";
    out += std::to_string(rng.Below(500));  // score
    out += '\t';
    out += body(len);
    out += '\n';
    ++local.questions;

    // Power-law answer count with the requested mean: PowerLaw(n, alpha)
    // concentrated at small values; shift so some questions get zero.
    const auto raw = rng.PowerLaw(64, 1.6);
    const auto answers =
        static_cast<std::uint64_t>(static_cast<double>(raw - 1) *
                                   params.answers_per_question / 2.2);
    for (std::uint64_t a = 0; a < answers && out.size() < params.target_bytes;
         ++a) {
      const std::uint64_t answer_id = next_id++;
      const std::size_t alen =
          params.min_body + rng.Below(params.max_body - params.min_body + 1);
      out += std::to_string(answer_id);
      out += "\tA\t";
      out += std::to_string(question_id);
      out += '\t';
      out += std::to_string(rng.Below(200));
      out += '\t';
      out += body(alen);
      out += '\n';
      ++local.answers;
    }
  }
  local.bytes = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

PostKind ClassifyPost(std::string_view line) {
  // Format: id \t kind \t parent \t score \t body
  const auto first_tab = line.find('\t');
  if (first_tab == std::string_view::npos || first_tab + 1 >= line.size()) {
    return PostKind::kOther;
  }
  switch (line[first_tab + 1]) {
    case 'Q': return PostKind::kQuestion;
    case 'A': return PostKind::kAnswer;
    default: return PostKind::kOther;
  }
}

StackExchangeStats CountPosts(std::string_view text, bool skip_partial_first) {
  StackExchangeStats stats;
  stats.bytes = text.size();
  std::size_t pos = 0;
  if (skip_partial_first) {
    const auto nl = text.find('\n');
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
  }
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    switch (ClassifyPost(line)) {
      case PostKind::kQuestion: ++stats.questions; break;
      case PostKind::kAnswer: ++stats.answers; break;
      case PostKind::kOther: break;
    }
    pos = nl + 1;
  }
  return stats;
}

}  // namespace pstk::workloads
