// Power-law directed graph generator for the PageRank benchmarks
// (BigDataBench/HiBench use web-graph-shaped inputs; the paper runs on a
// 1,000,000-vertex dataset).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pstk::workloads {

using VertexId = std::uint32_t;

struct GraphParams {
  VertexId vertices = 100000;
  double average_out_degree = 8.0;
  /// Power-law exponent of the in-degree distribution (web-like ~2.1).
  double alpha = 2.1;
  std::uint64_t seed = 1000000;
};

struct Graph {
  VertexId vertices = 0;
  /// CSR-style adjacency: out_edges[offsets[v] .. offsets[v+1]).
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> targets;

  [[nodiscard]] std::uint64_t edge_count() const { return targets.size(); }
  [[nodiscard]] std::size_t out_degree(VertexId v) const {
    return offsets[v + 1] - offsets[v];
  }
};

/// Deterministic generation: out-degrees ~ Poisson-ish around the average,
/// targets drawn with power-law popularity (vertex 0 most popular).
Graph GenerateGraph(const GraphParams& params);

/// Adjacency-list text form, one line per vertex: "src\tdst dst dst".
/// This is the on-disk input format the Spark/MR versions parse.
std::string GraphToAdjacencyText(const Graph& graph);

/// Parse one adjacency line back into (src, targets).
bool ParseAdjacencyLine(const std::string& line, VertexId* src,
                        std::vector<VertexId>* targets);

}  // namespace pstk::workloads
