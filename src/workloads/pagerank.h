// Reference (serial) PageRank and shared constants for the PageRank
// benchmarks. Both the BigDataBench-style damping (0.15 + 0.85 * sum) and
// the per-iteration update are exactly what the paper's Fig 5 snippet uses.
#pragma once

#include <vector>

#include "workloads/graph.h"

namespace pstk::workloads {

inline constexpr double kDamping = 0.85;
inline constexpr double kBaseRank = 0.15;
inline constexpr int kDefaultIterations = 10;

/// Serial reference implementation (ground truth for the distributed
/// versions): ranks start at 1.0; each iteration
///   rank[v] = 0.15 + 0.85 * sum(rank[u] / out_degree(u)) over u -> v.
/// Vertices with no outgoing edges contribute nothing (BigDataBench
/// semantics, matching the paper's Scala snippet).
std::vector<double> PageRankReference(const Graph& graph, int iterations);

/// Max absolute difference between two rank vectors.
double MaxRankDelta(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace pstk::workloads
