#include "workloads/graph.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pstk::workloads {

Graph GenerateGraph(const GraphParams& params) {
  PSTK_CHECK_MSG(params.vertices >= 2, "graph needs at least two vertices");
  Rng rng(params.seed);
  Graph graph;
  graph.vertices = params.vertices;
  graph.offsets.reserve(params.vertices + 1);
  graph.offsets.push_back(0);

  for (VertexId v = 0; v < params.vertices; ++v) {
    // Out-degree: 1 + geometric-ish spread around the average.
    const auto degree = static_cast<std::size_t>(
        1 + rng.Below(static_cast<std::uint64_t>(
                2.0 * params.average_out_degree - 1.0)));
    for (std::size_t e = 0; e < degree; ++e) {
      // Popularity-skewed target (power-law in-degree), avoiding self loops.
      VertexId target = static_cast<VertexId>(
          rng.PowerLaw(params.vertices, params.alpha) - 1);
      if (target == v) target = (target + 1) % params.vertices;
      graph.targets.push_back(target);
    }
    graph.offsets.push_back(graph.targets.size());
  }
  return graph;
}

std::string GraphToAdjacencyText(const Graph& graph) {
  std::string out;
  out.reserve(graph.edge_count() * 8 + graph.vertices * 8);
  for (VertexId v = 0; v < graph.vertices; ++v) {
    out += std::to_string(v);
    out += '\t';
    for (std::uint64_t e = graph.offsets[v]; e < graph.offsets[v + 1]; ++e) {
      if (e != graph.offsets[v]) out += ' ';
      out += std::to_string(graph.targets[e]);
    }
    out += '\n';
  }
  return out;
}

bool ParseAdjacencyLine(const std::string& line, VertexId* src,
                        std::vector<VertexId>* targets) {
  const auto tab = line.find('\t');
  if (tab == std::string::npos) return false;
  *src = static_cast<VertexId>(std::strtoul(line.c_str(), nullptr, 10));
  targets->clear();
  std::size_t pos = tab + 1;
  while (pos < line.size()) {
    auto space = line.find(' ', pos);
    if (space == std::string::npos) space = line.size();
    if (space > pos) {
      targets->push_back(static_cast<VertexId>(
          std::strtoul(line.c_str() + pos, nullptr, 10)));
    }
    pos = space + 1;
  }
  return true;
}

}  // namespace pstk::workloads
