// Checkpoint/restart consistency checker: snapshot epochs must commit in
// strictly increasing order, an epoch may only commit once every rank's
// fragment landed, and a restart must roll every rank back to the same
// epoch — no process may resume past a snapshot another process lost.
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "verify/checkers.h"

namespace pstk::verify {

namespace {

class CkptConsistencyChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "ckpt-consistency";
  }

  void OnCkptWrite(int rank, int epoch, Bytes bytes, SimTime t) override {
    (void)bytes;
    if (!writes_[epoch].insert(rank).second) {
      std::ostringstream msg;
      msg << "rank " << rank << " wrote its fragment for snapshot epoch "
          << epoch << " twice; each rank checkpoints an epoch exactly once "
             "at the collective boundary";
      Report(Finding{Severity::kWarning, "ckpt-consistency",
                     "ckpt-duplicate-write", msg.str(),
                     "rank " + std::to_string(rank), t});
    }
  }

  void OnCkptCommit(int epoch, int ranks_written, int nranks,
                    SimTime t) override {
    const auto seen = static_cast<int>(writes_[epoch].size());
    if (ranks_written != nranks || seen < nranks) {
      std::ostringstream msg;
      msg << "snapshot epoch " << epoch << " committed with only "
          << (seen < ranks_written ? seen : ranks_written) << "/" << nranks
          << " fragments written; restoring it would mix pre- and "
             "post-snapshot state across ranks";
      Report(Finding{Severity::kError, "ckpt-consistency",
                     "ckpt-partial-commit", msg.str(), "coordinator", t});
    }
    if (last_committed_.has_value() && epoch <= *last_committed_) {
      std::ostringstream msg;
      msg << "snapshot epoch " << epoch << " committed after epoch "
          << *last_committed_ << "; epochs must be strictly monotone or a "
             "restart can resurrect overwritten state";
      Report(Finding{Severity::kError, "ckpt-consistency",
                     "ckpt-epoch-regression", msg.str(), "coordinator", t});
    }
    if (!last_committed_.has_value() || epoch > *last_committed_) {
      last_committed_ = epoch;
    }
  }

  void OnCkptRestore(int rank, int epoch, SimTime t) override {
    if (!restore_epoch_.has_value()) {
      restore_epoch_ = epoch;
      return;
    }
    if (epoch != *restore_epoch_) {
      std::ostringstream msg;
      msg << "rank " << rank << " restored from snapshot epoch " << epoch
          << " while another rank restored from epoch " << *restore_epoch_
          << "; a rank resumed past a snapshot its peers lost";
      Report(Finding{Severity::kError, "ckpt-consistency",
                     "ckpt-restore-divergence", msg.str(),
                     "rank " + std::to_string(rank), t});
    }
  }

 private:
  std::map<int, std::set<int>> writes_;  // epoch -> ranks written
  std::optional<int> last_committed_;
  std::optional<int> restore_epoch_;  // first restore pins the epoch
};

}  // namespace

std::unique_ptr<Checker> MakeCkptChecker() {
  return std::make_unique<CkptConsistencyChecker>();
}

}  // namespace pstk::verify
