// Spark/MapReduce invariant checker: lineage acyclicity, stage-barrier
// violations, and the recompute-storm diagnostic for iteratively reused
// un-persisted RDDs (the paper's Fig. 5/6 persist() lesson).
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "verify/checkers.h"

namespace pstk::verify {

namespace {

class SparkInvariantChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "spark-invariants";
  }

  void OnSparkLineage(const std::vector<LineageEdge>& edges) override {
    std::map<int, std::vector<int>> parents;
    std::set<int> nodes;
    for (const LineageEdge& e : edges) {
      parents[e.child].push_back(e.parent);
      nodes.insert(e.child);
      nodes.insert(e.parent);
    }
    // Iterative DFS, colored: 1 = on stack, 2 = done.
    std::map<int, int> color;
    for (int start : nodes) {
      if (color[start] != 0) continue;
      std::vector<std::pair<int, std::size_t>> stack{{start, 0}};
      std::vector<int> path{start};
      color[start] = 1;
      while (!stack.empty()) {
        auto& [node, next] = stack.back();
        const auto& ps = parents[node];
        if (next < ps.size()) {
          const int parent = ps[next++];
          if (color[parent] == 1) {
            ReportCycle(path, parent);
            color[parent] = 2;  // report each cycle once
          } else if (color[parent] == 0) {
            color[parent] = 1;
            stack.emplace_back(parent, 0);
            path.push_back(parent);
          }
        } else {
          color[node] = 2;
          stack.pop_back();
          path.pop_back();
        }
      }
    }
  }

  void OnSparkPartitionComputed(int rdd, int partition, bool persisted,
                                SimTime t) override {
    const int count = ++computes_[{rdd, partition}];
    if (persisted || count < 2) return;
    if (!warned_rdds_.insert(rdd).second) return;
    std::ostringstream msg;
    msg << "recompute storm: un-persisted RDD " << rdd << " partition "
        << partition << " was materialized " << count
        << " times; every reuse re-runs its lineage from the source — "
           "persist()/cache() it before iterative reuse (paper Fig. 5/6)";
    Report(Finding{Severity::kWarning, "spark-invariants",
                   "spark-recompute-storm", msg.str(),
                   "rdd " + std::to_string(rdd), t});
  }

  void OnStageBarrier(std::string_view framework, int stage_id, int ready,
                      int total, bool will_recover, SimTime t) override {
    std::ostringstream msg;
    msg << framework << " stage barrier: a consumer of stage/shuffle "
        << stage_id << " found only " << ready << "/" << total
        << " producer outputs available";
    if (will_recover) {
      msg << "; the scheduler re-runs the missing producers (lineage/"
             "task retry)";
      Report(Finding{Severity::kWarning, "spark-invariants",
                     "stage-barrier-retry", msg.str(),
                     std::string(framework), t});
    } else {
      msg << " and no recovery path exists (stage-barrier violation)";
      Report(Finding{Severity::kError, "spark-invariants",
                     "stage-barrier-violation", msg.str(),
                     std::string(framework), t});
    }
  }

 private:
  void ReportCycle(const std::vector<int>& path, int back_to) {
    std::ostringstream cycle;
    bool in_cycle = false;
    for (int node : path) {
      if (node == back_to) in_cycle = true;
      if (in_cycle) cycle << node << " -> ";
    }
    cycle << back_to;
    Report(Finding{Severity::kError, "spark-invariants",
                   "spark-lineage-cycle",
                   "RDD lineage is cyclic: " + cycle.str() +
                       "; lineage must be a DAG for recovery to terminate",
                   "rdd " + std::to_string(back_to), 0});
  }

  std::map<std::pair<int, int>, int> computes_;  // (rdd, partition) -> count
  std::set<int> warned_rdds_;
};

}  // namespace

std::unique_ptr<Checker> MakeSparkInvariantChecker() {
  return std::make_unique<SparkInvariantChecker>();
}

void InstallAll(Hub& hub) {
  hub.Install(MakeMpiUsageChecker());
  hub.Install(MakeShmemSyncChecker());
  hub.Install(MakeSparkInvariantChecker());
  hub.Install(MakeCkptChecker());
}

}  // namespace pstk::verify
