// Runtime-verification hub: a pluggable checker framework subscribed to
// framework hooks (MPI, SHMEM, Spark/MR) and engine events.
//
// Layering: this header is intentionally self-contained (plain-data hook
// signatures, no sim/framework includes) so that `sim::Engine` can own a
// Hub by value while the concrete checkers live in the higher-level
// `pstk_verify` library. Frameworks call the Hub's inline dispatchers at
// interesting events; with no checkers installed every dispatcher is a
// single empty() test, so instrumented hot paths stay near-zero cost.
//
// Checkers report Findings (never abort): a violation becomes a structured
// diagnostic with severity, actor, and virtual timestamp — the paper's
// "silent hang / flat dump" failure modes turned into actionable reports
// (e.g. the Fig. 4 INT_MAX overflow in MPI_File_read_at_all).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace pstk::verify {

enum class Severity : std::uint8_t {
  kWarning,  // suspicious but survivable (e.g. recompute storm)
  kError,    // a correctness violation
};

inline const char* SeverityName(Severity s) {
  return s == Severity::kError ? "ERROR" : "WARNING";
}

/// One structured diagnostic produced by a checker.
struct Finding {
  Severity severity = Severity::kError;
  std::string checker;  // producing checker, e.g. "mpi-usage"
  std::string code;     // stable slug, e.g. "mpi-io-count-overflow"
  std::string message;  // human diagnostic (includes rank/callsite)
  std::string actor;    // offending process, e.g. "rank 3" / "pe 1"
  SimTime time = 0;     // virtual time of detection
};

/// A message still sitting in an endpoint inbox when its owner exited.
struct PendingMessage {
  int src = 0;
  int tag = 0;
  Bytes bytes = 0;
};

/// One dependency edge of an RDD lineage graph (child derives from parent).
struct LineageEdge {
  int child = 0;
  int parent = 0;
};

class Hub;

/// Base class for runtime checkers. Every hook has a no-op default, so a
/// checker overrides only the events it cares about. Hooks fire inline
/// from the simulation in deterministic order; on a sharded engine a
/// framework's hooks all fire from the one shard that hosts the job, and
/// Hub::Report serializes findings across shards.
class Checker {
 public:
  virtual ~Checker() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  // --- MPI ----------------------------------------------------------------
  /// A rank entered collective number `seq` on communicator `comm_id`.
  virtual void OnMpiCollective(int comm_id, int comm_size, int rank,
                               std::string_view op, std::uint32_t seq,
                               SimTime t) {
    (void)comm_id; (void)comm_size; (void)rank; (void)op; (void)seq; (void)t;
  }
  /// A receive matched a message larger than the posted buffer.
  virtual void OnMpiTruncation(int rank, int src, int tag, Bytes got,
                               Bytes buffer, SimTime t) {
    (void)rank; (void)src; (void)tag; (void)got; (void)buffer; (void)t;
  }
  /// A rank passed MPI_Finalize with unconsumed messages or live requests.
  virtual void OnMpiRankExit(int rank,
                             const std::vector<PendingMessage>& unmatched,
                             int leaked_requests, SimTime t) {
    (void)rank; (void)unmatched; (void)leaked_requests; (void)t;
  }
  virtual void OnMpiCommCreated(int comm_id, int rank) {
    (void)comm_id; (void)rank;
  }
  virtual void OnMpiCommDestroyed(int comm_id, int rank) {
    (void)comm_id; (void)rank;
  }
  /// An MPI-IO collective read was called with a count above INT_MAX
  /// (the paper's Fig. 4 failure, reported with rank and callsite).
  virtual void OnMpiIoCountOverflow(int rank, std::int64_t count,
                                    std::string_view callsite,
                                    std::string_view path, SimTime t) {
    (void)rank; (void)count; (void)callsite; (void)path; (void)t;
  }
  /// End of an SPMD job (post-Run); checkers flush end-of-job balances.
  virtual void OnJobEnd(std::string_view framework, SimTime t) {
    (void)framework; (void)t;
  }

  // --- SHMEM --------------------------------------------------------------
  /// One-sided access to the symmetric heap of `target_pe`.
  virtual void OnShmemAccess(int pe, int target_pe, Bytes offset, Bytes bytes,
                             bool write, bool atomic, SimTime t) {
    (void)pe; (void)target_pe; (void)offset; (void)bytes; (void)write;
    (void)atomic; (void)t;
  }
  /// A PE entered shmem_barrier_all.
  virtual void OnShmemBarrier(int pe, int npes, SimTime t) {
    (void)pe; (void)npes; (void)t;
  }
  /// shmem_wait_until on the PE's local ivar at `offset` was satisfied.
  virtual void OnShmemWaitSatisfied(int pe, Bytes offset, SimTime t) {
    (void)pe; (void)offset; (void)t;
  }

  // --- Checkpoint/restart -------------------------------------------------
  /// A rank/PE finished writing its snapshot fragment for `epoch`.
  virtual void OnCkptWrite(int rank, int epoch, Bytes bytes, SimTime t) {
    (void)rank; (void)epoch; (void)bytes; (void)t;
  }
  /// A snapshot epoch committed (became restorable): `ranks_written` of
  /// `nranks` fragments landed. A commit with missing fragments is broken.
  virtual void OnCkptCommit(int epoch, int ranks_written, int nranks,
                            SimTime t) {
    (void)epoch; (void)ranks_written; (void)nranks; (void)t;
  }
  /// A rank/PE restored its state from `epoch` during restart.
  virtual void OnCkptRestore(int rank, int epoch, SimTime t) {
    (void)rank; (void)epoch; (void)t;
  }

  // --- Spark / MapReduce --------------------------------------------------
  /// The driver submitted a job over the given lineage graph.
  virtual void OnSparkLineage(const std::vector<LineageEdge>& edges) {
    (void)edges;
  }
  /// A task materialized (rdd, partition) by running Compute (cache miss).
  virtual void OnSparkPartitionComputed(int rdd, int partition, bool persisted,
                                        SimTime t) {
    (void)rdd; (void)partition; (void)persisted; (void)t;
  }
  /// A consumer crossed a stage barrier with producer outputs missing.
  virtual void OnStageBarrier(std::string_view framework, int stage_id,
                              int ready, int total, bool will_recover,
                              SimTime t) {
    (void)framework; (void)stage_id; (void)ready; (void)total;
    (void)will_recover; (void)t;
  }

 protected:
  /// Append a finding to the owning hub (set by Hub::Install).
  void Report(Finding finding);

 private:
  friend class Hub;
  Hub* hub_ = nullptr;
};

/// Per-engine registry of installed checkers + collected findings. Owned
/// by value by sim::Engine; inactive (and free) until a checker installs.
class Hub {
 public:
  Hub() = default;
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  [[nodiscard]] bool active() const { return !checkers_.empty(); }

  void Install(std::unique_ptr<Checker> checker) {
    checker->hub_ = this;
    checkers_.push_back(std::move(checker));
  }

  // --- dispatchers (mirror Checker's hooks) -------------------------------
  void OnMpiCollective(int comm_id, int comm_size, int rank,
                       std::string_view op, std::uint32_t seq, SimTime t) {
    for (auto& c : checkers_) {
      c->OnMpiCollective(comm_id, comm_size, rank, op, seq, t);
    }
  }
  void OnMpiTruncation(int rank, int src, int tag, Bytes got, Bytes buffer,
                       SimTime t) {
    for (auto& c : checkers_) c->OnMpiTruncation(rank, src, tag, got, buffer, t);
  }
  void OnMpiRankExit(int rank, const std::vector<PendingMessage>& unmatched,
                     int leaked_requests, SimTime t) {
    for (auto& c : checkers_) {
      c->OnMpiRankExit(rank, unmatched, leaked_requests, t);
    }
  }
  void OnMpiCommCreated(int comm_id, int rank) {
    for (auto& c : checkers_) c->OnMpiCommCreated(comm_id, rank);
  }
  void OnMpiCommDestroyed(int comm_id, int rank) {
    for (auto& c : checkers_) c->OnMpiCommDestroyed(comm_id, rank);
  }
  void OnMpiIoCountOverflow(int rank, std::int64_t count,
                            std::string_view callsite, std::string_view path,
                            SimTime t) {
    for (auto& c : checkers_) {
      c->OnMpiIoCountOverflow(rank, count, callsite, path, t);
    }
  }
  void OnJobEnd(std::string_view framework, SimTime t) {
    for (auto& c : checkers_) c->OnJobEnd(framework, t);
  }
  void OnShmemAccess(int pe, int target_pe, Bytes offset, Bytes bytes,
                     bool write, bool atomic, SimTime t) {
    for (auto& c : checkers_) {
      c->OnShmemAccess(pe, target_pe, offset, bytes, write, atomic, t);
    }
  }
  void OnShmemBarrier(int pe, int npes, SimTime t) {
    for (auto& c : checkers_) c->OnShmemBarrier(pe, npes, t);
  }
  void OnShmemWaitSatisfied(int pe, Bytes offset, SimTime t) {
    for (auto& c : checkers_) c->OnShmemWaitSatisfied(pe, offset, t);
  }
  void OnCkptWrite(int rank, int epoch, Bytes bytes, SimTime t) {
    for (auto& c : checkers_) c->OnCkptWrite(rank, epoch, bytes, t);
  }
  void OnCkptCommit(int epoch, int ranks_written, int nranks, SimTime t) {
    for (auto& c : checkers_) c->OnCkptCommit(epoch, ranks_written, nranks, t);
  }
  void OnCkptRestore(int rank, int epoch, SimTime t) {
    for (auto& c : checkers_) c->OnCkptRestore(rank, epoch, t);
  }
  void OnSparkLineage(const std::vector<LineageEdge>& edges) {
    for (auto& c : checkers_) c->OnSparkLineage(edges);
  }
  void OnSparkPartitionComputed(int rdd, int partition, bool persisted,
                                SimTime t) {
    for (auto& c : checkers_) {
      c->OnSparkPartitionComputed(rdd, partition, persisted, t);
    }
  }
  void OnStageBarrier(std::string_view framework, int stage_id, int ready,
                      int total, bool will_recover, SimTime t) {
    for (auto& c : checkers_) {
      c->OnStageBarrier(framework, stage_id, ready, total, will_recover, t);
    }
  }

  // --- findings -----------------------------------------------------------
  /// Serialized: with a sharded engine, checker hooks fire concurrently
  /// from shard worker threads (each shard's hooks stay in its own
  /// deterministic order; cross-shard finding interleaving is host-timing
  /// dependent, which is why assertions should count/filter findings, not
  /// compare their global order).
  void Report(Finding finding) {
    std::lock_guard<std::mutex> lk(mu_);
    if (finding.severity == Severity::kError) ++errors_;
    findings_.push_back(std::move(finding));
  }

  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] std::size_t warning_count() const {
    return findings_.size() - errors_;
  }

  /// Count findings with the given stable code slug.
  [[nodiscard]] std::size_t CountCode(std::string_view code) const {
    std::size_t n = 0;
    for (const Finding& f : findings_) {
      if (f.code == code) ++n;
    }
    return n;
  }

  /// Human-readable report of all findings ("clean" when there are none).
  [[nodiscard]] std::string RenderReport() const {
    if (findings_.empty()) return "verify: clean (0 findings)\n";
    std::ostringstream oss;
    oss << "verify: " << errors_ << " error(s), " << warning_count()
        << " warning(s)\n";
    for (const Finding& f : findings_) {
      oss << "  [" << SeverityName(f.severity) << "] " << f.checker << "/"
          << f.code;
      if (!f.actor.empty()) oss << " (" << f.actor << ")";
      oss << " t=" << f.time << "\n    " << f.message << "\n";
    }
    return oss.str();
  }

  void Clear() {
    findings_.clear();
    errors_ = 0;
  }

 private:
  std::vector<std::unique_ptr<Checker>> checkers_;
  std::mutex mu_;  // guards findings_/errors_ against concurrent shards
  std::vector<Finding> findings_;
  std::size_t errors_ = 0;
};

inline void Checker::Report(Finding finding) {
  if (hub_ != nullptr) hub_->Report(std::move(finding));
}

}  // namespace pstk::verify
