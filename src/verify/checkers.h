// The concrete runtime checkers installable on a verify::Hub:
//
//  * MpiUsageChecker   — MUST-style MPI usage: unmatched sends, message
//    truncation, leaked requests/communicators, cross-rank collective
//    call-order consistency, MPI-IO INT_MAX count overflow (Fig. 4).
//  * ShmemSyncChecker  — vector-clock happens-before over symmetric-heap
//    put/get/atomics vs. barrier/wait_until; flags racy accesses.
//  * SparkInvariantChecker — lineage acyclicity, stage-barrier violations,
//    recompute-storm warnings for un-persisted iteratively reused RDDs
//    (the Fig. 5/6 persist() lesson as a diagnostic).
//  * CkptConsistencyChecker — checkpoint/restart consistency: monotone
//    snapshot epochs, every-rank-writes-before-commit, and uniform restore
//    epoch (no process resumes past a snapshot another process lost).
//
// The deadlock explainer (wait-for graph + cycle extraction) lives in
// sim::Engine itself — it reports into the same Hub under checker
// "deadlock".
#pragma once

#include <memory>

#include "verify/verify.h"

namespace pstk::verify {

std::unique_ptr<Checker> MakeMpiUsageChecker();
std::unique_ptr<Checker> MakeShmemSyncChecker();
std::unique_ptr<Checker> MakeSparkInvariantChecker();
std::unique_ptr<Checker> MakeCkptChecker();

/// Install every checker on the hub (what `--verify` does).
void InstallAll(Hub& hub);

}  // namespace pstk::verify
