// MUST-style MPI usage checker: correctness diagnostics for the MiniMPI
// runtime, reported as structured findings instead of hangs or aborts.
#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "verify/checkers.h"

namespace pstk::verify {

namespace {

// Collective tags start here in MiniMPI/MiniSHMEM; messages at or above
// this tag are runtime-internal (barrier tokens etc.), not user traffic.
constexpr int kCollTagBase = 0x40000000;

class MpiUsageChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const override { return "mpi-usage"; }

  void OnMpiCollective(int comm_id, int comm_size, int rank,
                       std::string_view op, std::uint32_t seq,
                       SimTime t) override {
    (void)comm_size;
    auto [it, inserted] =
        first_call_.try_emplace({comm_id, seq}, FirstCall{std::string(op), rank});
    if (inserted) return;
    const FirstCall& first = it->second;
    if (first.op == op) return;
    std::ostringstream msg;
    msg << "collective call-order mismatch on comm " << comm_id
        << ": at collective #" << seq << " rank " << rank << " called "
        << op << " while rank " << first.rank << " called " << first.op;
    Report(Finding{Severity::kError, "mpi-usage", "mpi-collective-mismatch",
                   msg.str(), "rank " + std::to_string(rank), t});
  }

  void OnMpiTruncation(int rank, int src, int tag, Bytes got, Bytes buffer,
                       SimTime t) override {
    std::ostringstream msg;
    msg << "message truncation at rank " << rank << ": received " << got
        << " bytes from endpoint " << src << " (tag " << tag
        << ") into a " << buffer
        << "-byte buffer; payload truncated (MPI_ERR_TRUNCATE)";
    Report(Finding{Severity::kError, "mpi-usage", "mpi-truncation", msg.str(),
                   "rank " + std::to_string(rank), t});
  }

  void OnMpiRankExit(int rank, const std::vector<PendingMessage>& unmatched,
                     int leaked_requests, SimTime t) override {
    for (const PendingMessage& m : unmatched) {
      if (m.tag >= kCollTagBase) continue;  // runtime-internal traffic
      std::ostringstream msg;
      msg << "unmatched send: a " << m.bytes << "-byte message from endpoint "
          << m.src << " with tag " << m.tag << " was never received by rank "
          << rank << " (it reached MPI_Finalize with the message pending)";
      Report(Finding{Severity::kError, "mpi-usage", "mpi-unmatched-send",
                     msg.str(), "rank " + std::to_string(rank), t});
    }
    if (leaked_requests > 0) {
      std::ostringstream msg;
      msg << "rank " << rank << " reached MPI_Finalize with "
          << leaked_requests
          << " outstanding nonblocking receive request(s) never completed "
             "by MPI_Wait/MPI_Waitall (request leak)";
      Report(Finding{Severity::kError, "mpi-usage", "mpi-request-leak",
                     msg.str(), "rank " + std::to_string(rank), t});
    }
  }

  void OnMpiCommCreated(int comm_id, int rank) override {
    ++live_comms_[{comm_id, rank}];
  }

  void OnMpiCommDestroyed(int comm_id, int rank) override {
    auto it = live_comms_.find({comm_id, rank});
    if (it == live_comms_.end()) return;
    if (--it->second <= 0) live_comms_.erase(it);
  }

  void OnMpiIoCountOverflow(int rank, std::int64_t count,
                            std::string_view callsite, std::string_view path,
                            SimTime t) override {
    std::ostringstream msg;
    msg << callsite << " at rank " << rank << " on \"" << path
        << "\": count " << count << " exceeds INT_MAX (2147483647); the "
        << "int count argument caps a rank's collective read at 2 GB — "
        << "use more ranks so each reads under 2 GB (paper Fig. 4)";
    Report(Finding{Severity::kError, "mpi-usage", "mpi-io-count-overflow",
                   msg.str(), "rank " + std::to_string(rank), t});
  }

  void OnJobEnd(std::string_view framework, SimTime t) override {
    if (framework != "mpi") return;
    for (const auto& [key, live] : live_comms_) {
      if (live <= 0) continue;
      std::ostringstream msg;
      msg << "communicator leak: comm " << key.first << " on rank "
          << key.second << " was created " << live
          << " more time(s) than freed by job end";
      Report(Finding{Severity::kError, "mpi-usage", "mpi-comm-leak", msg.str(),
                     "rank " + std::to_string(key.second), t});
    }
    live_comms_.clear();
    first_call_.clear();
  }

 private:
  struct FirstCall {
    std::string op;
    int rank;
  };
  // (comm_id, collective sequence number) -> first op observed.
  std::map<std::pair<int, std::uint32_t>, FirstCall> first_call_;
  // (comm_id, rank) -> live (created - destroyed) count.
  std::map<std::pair<int, int>, int> live_comms_;
};

}  // namespace

std::unique_ptr<Checker> MakeMpiUsageChecker() {
  return std::make_unique<MpiUsageChecker>();
}

}  // namespace pstk::verify
