// SHMEM synchronization checker: vector-clock happens-before over
// one-sided symmetric-heap traffic.
//
// Every put/get/atomic is an event stamped with the issuing PE's vector
// clock. Two accesses race when they touch overlapping bytes of the same
// target heap, at least one writes, they are not both atomics, and
// neither happens-before the other. Synchronization edges come from
// shmem_barrier_all (a full barrier: when every PE has entered barrier k,
// all clocks join and the access history is cleared — this also bounds
// memory) and from shmem_wait_until (the waiter joins with the clock of
// every write to the watched ivar).
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "verify/checkers.h"

namespace pstk::verify {

namespace {

using Clock = std::vector<std::uint64_t>;

class ShmemSyncChecker final : public Checker {
 public:
  [[nodiscard]] std::string_view name() const override { return "shmem-sync"; }

  void OnShmemAccess(int pe, int target_pe, Bytes offset, Bytes bytes,
                     bool write, bool atomic, SimTime t) override {
    EnsurePe(std::max(pe, target_pe));
    Clock& my = clocks_[static_cast<std::size_t>(pe)];
    ++my[static_cast<std::size_t>(pe)];

    Access access;
    access.pe = pe;
    access.lo = offset;
    access.hi = offset + bytes;
    access.write = write;
    access.atomic = atomic;
    access.time = t;
    access.vc = my;

    auto& target_history = history_[target_pe];
    for (const Access& prior : target_history) {
      if (prior.pe == pe) continue;  // program order on the issuing PE
      if (prior.hi <= access.lo || access.hi <= prior.lo) continue;
      if (!prior.write && !access.write) continue;  // read-read is fine
      if (prior.atomic && access.atomic) continue;  // NIC serializes atomics
      if (HappensBefore(prior.vc, prior.pe, my)) continue;
      std::ostringstream msg;
      msg << "data race on PE " << target_pe << "'s symmetric heap ["
          << access.lo << ", " << access.hi << "): "
          << Describe(prior) << " and " << Describe(access)
          << " are concurrent (no barrier/fence/wait_until orders them)";
      Report(Finding{Severity::kError, "shmem-sync", "shmem-race", msg.str(),
                     "pe " + std::to_string(pe), t});
    }
    target_history.push_back(std::move(access));
  }

  void OnShmemBarrier(int pe, int npes, SimTime t) override {
    (void)t;
    EnsurePe(npes - 1);
    ++barriers_entered_[static_cast<std::size_t>(pe)];
    // Barrier epoch `completed_epochs_` finishes once every PE has entered
    // that many barriers: all clocks join and prior accesses are ordered
    // before everything that follows, so the history can be dropped.
    bool all_in = true;
    for (int p = 0; p < npes; ++p) {
      if (barriers_entered_[static_cast<std::size_t>(p)] <=
          completed_epochs_) {
        all_in = false;
        break;
      }
    }
    if (!all_in) return;
    ++completed_epochs_;
    Clock joined(clocks_.empty() ? 0 : clocks_[0].size(), 0);
    for (const Clock& c : clocks_) {
      for (std::size_t i = 0; i < joined.size(); ++i) {
        joined[i] = std::max(joined[i], c[i]);
      }
    }
    for (Clock& c : clocks_) c = joined;
    history_.clear();
  }

  void OnShmemWaitSatisfied(int pe, Bytes offset, SimTime t) override {
    (void)t;
    EnsurePe(pe);
    Clock& my = clocks_[static_cast<std::size_t>(pe)];
    // The satisfied wait synchronizes with every write to the watched
    // 8-byte ivar on this PE's heap.
    for (const Access& prior : history_[pe]) {
      if (!prior.write) continue;
      if (prior.hi <= offset || offset + 8 <= prior.lo) continue;
      for (std::size_t i = 0; i < my.size() && i < prior.vc.size(); ++i) {
        my[i] = std::max(my[i], prior.vc[i]);
      }
    }
  }

 private:
  struct Access {
    int pe = 0;
    Bytes lo = 0;
    Bytes hi = 0;
    bool write = false;
    bool atomic = false;
    SimTime time = 0;
    Clock vc;
  };

  void EnsurePe(int pe) {
    const auto need = static_cast<std::size_t>(pe) + 1;
    if (clocks_.size() < need) clocks_.resize(need);
    if (barriers_entered_.size() < need) barriers_entered_.resize(need, 0);
    for (Clock& c : clocks_) {
      if (c.size() < need) c.resize(need, 0);
    }
  }

  /// prior (an event by `owner`) happens-before the current state `now`.
  static bool HappensBefore(const Clock& prior, int owner, const Clock& now) {
    const auto o = static_cast<std::size_t>(owner);
    return o < now.size() && o < prior.size() && prior[o] <= now[o];
  }

  static std::string Describe(const Access& a) {
    std::ostringstream oss;
    oss << (a.atomic ? "atomic " : "") << (a.write ? "put/write" : "get/read")
        << " by PE " << a.pe << " at t=" << a.time;
    return oss.str();
  }

  std::vector<Clock> clocks_;                // per-PE vector clock
  std::vector<std::uint64_t> barriers_entered_;  // per-PE barrier count
  std::uint64_t completed_epochs_ = 0;
  std::map<int, std::vector<Access>> history_;  // target PE -> accesses
};

}  // namespace

std::unique_ptr<Checker> MakeShmemSyncChecker() {
  return std::make_unique<ShmemSyncChecker>();
}

}  // namespace pstk::verify
