// MiniSpark public API: SparkContext (driver-side facade), the Rdd /
// PairRdd user handles, and the MiniSpark deployment (driver + executors
// on the simulated cluster).
//
// The deployment model matches the paper's runs: one driver process plus
// `executors_per_node` single-core executor processes per node; driver <->
// executor orchestration always travels over Java sockets (IPoIB), while
// shuffle data uses sockets or the RDMA engine depending on
// SparkOptions::rdma_shuffle (the Spark-RDMA plugin of Lu et al.).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "dfs/dfs.h"
#include "net/network.h"
#include "sim/engine.h"
#include "spark/rdd.h"
#include "spark/runtime.h"
#include "spark/task_rt.h"

namespace pstk::spark {

template <typename T>
class Rdd;
template <typename K, typename V>
class PairRdd;

struct ExecutorInfo {
  int id = -1;
  int node = -1;
  sim::Pid pid = sim::kNoPid;
  bool alive = false;
  bool busy = false;
};

struct AppStats {
  std::uint64_t jobs = 0;
  std::uint64_t tasks_launched = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t fetch_failures = 0;
  Bytes shuffle_fetched_bytes = 0;  // modeled bytes moved over the fabric
  Bytes shuffle_local_bytes = 0;    // modeled bytes served executor-locally
  Bytes cache_spilled_bytes = 0;    // modeled bytes spilled by BlockManager
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Interned tags for the Spark layer's obs instrumentation; filled by
/// MiniSpark against the engine's registry.
struct SparkObsTags {
  // Spans (Chrome trace).
  obs::TagId job = obs::kNoTag;
  obs::TagId stage = obs::kNoTag;
  obs::TagId task = obs::kNoTag;
  // Where-time-goes histograms (virtual seconds per occurrence).
  obs::TagId time_compute = obs::kNoTag;
  obs::TagId time_shuffle_net = obs::kNoTag;
  obs::TagId time_shuffle_disk = obs::kNoTag;
  obs::TagId time_persist_io = obs::kNoTag;
  // Counters.
  obs::TagId tasks = obs::kNoTag;
  obs::TagId bytes_socket = obs::kNoTag;
  obs::TagId bytes_rdma = obs::kNoTag;
  obs::TagId bytes_local = obs::kNoTag;
  obs::TagId bytes_fetched = obs::kNoTag;  // actual bytes handed to reducers
  // Recovery work (cross-framework `recovery.*` namespace; the MPI/SHMEM
  // side's counters come from ckpt::RestartManager).
  obs::TagId recovery_task_retries = obs::kNoTag;
  obs::TagId recovery_fetch_failures = obs::kNoTag;
  obs::TagId recovery_executors_reacquired = obs::kNoTag;
};

/// Engine-global application state shared by driver and executors.
struct AppState {
  SparkOptions options;
  cluster::Cluster* cluster = nullptr;
  dfs::MiniDfs* dfs = nullptr;  // may be null (local-file apps)
  obs::Registry* obs = nullptr;
  verify::Hub* verify = nullptr;  // engine-owned runtime-verification hub
  SparkObsTags obs_tags;
  std::unique_ptr<net::Network> control;      // driver + executor endpoints
  std::shared_ptr<net::Fabric> shuffle_fabric;
  ShuffleStore shuffle_store;
  std::unique_ptr<BlockStore> block_store;
  std::vector<ExecutorInfo> executors;
  /// Re-spawns one executor process on its (healed) node; installed by
  /// MiniSpark::Submit when SparkOptions::reacquire_executors is set.
  std::function<void(ExecutorInfo&)> respawn_executor;
  int driver_endpoint = 0;
  std::map<std::uint64_t, std::function<buf::Bytes(TaskRt&, int)>> closures;
  std::uint64_t next_task_set = 1;
  int next_rdd_id = 0;
  int next_shuffle_id = 0;
  AppStats stats;
  bool app_done = false;

  [[nodiscard]] double data_scale() const { return cluster->data_scale(); }
  [[nodiscard]] Bytes Modeled(Bytes actual) const {
    return cluster->Modeled(actual);
  }
  [[nodiscard]] bool ExecutorAlive(int executor) const {
    return cluster->engine().IsAlive(executors[executor].pid);
  }
};

/// Driver-side facade: RDD factories and the DAG scheduler entry point.
/// Constructed by MiniSpark inside the driver process.
class SparkContext {
 public:
  SparkContext(AppState& app, sim::Context& ctx) : app_(app), ctx_(ctx) {}

  [[nodiscard]] int default_parallelism() const {
    return app_.options.default_parallelism > 0
               ? app_.options.default_parallelism
               : static_cast<int>(app_.executors.size());
  }
  [[nodiscard]] sim::Context& ctx() { return ctx_; }
  [[nodiscard]] AppState& app() { return app_; }
  [[nodiscard]] const AppStats& stats() const { return app_.stats; }

  /// sc.parallelize(data, slices) — data ships inside the task closures.
  template <typename T>
  Rdd<T> Parallelize(std::vector<T> data, int slices = 0);

  /// sc.textFile("hdfs://...") — one partition per MiniDFS block.
  Result<Rdd<std::string>> TextFile(const std::string& path);

  /// sc.textFile("file://...") — the file must be staged on every node's
  /// local scratch; fixed-size splits with line-boundary handling.
  Result<Rdd<std::string>> TextFileLocal(const std::string& path);

  // -- internals used by the handles (public for template access) ---------

  int NewRddId() { return app_.next_rdd_id++; }
  int NewShuffleId() { return app_.next_shuffle_id++; }
  void RegisterShuffle(int shuffle_id, int num_maps, int num_reduces) {
    app_.shuffle_store.Register(shuffle_id, num_maps, num_reduces);
  }

  /// DAG-schedule a job: run `result_closure` over every partition of
  /// `final_rdd` (parent shuffle stages first), with lineage-based retry
  /// on executor loss. Returns per-partition serialized results (each a
  /// zero-copy slice of the executor's completion message).
  Result<std::vector<buf::Bytes>> RunJob(
      std::shared_ptr<RddBase> final_rdd,
      std::function<buf::Bytes(TaskRt&, int)> result_closure);

  void Unpersist(int rdd_id) { app_.block_store->DropRdd(rdd_id); }

 private:
  struct TaskSetOutcome {
    Status status;
    bool fetch_failed = false;
  };
  TaskSetOutcome RunTaskSet(RddBase& locality_rdd,
                            const std::vector<int>& partitions,
                            const std::function<buf::Bytes(TaskRt&, int)>&
                                closure,
                            std::map<int, buf::Bytes>* results);
  std::vector<int> PreferredExecutors(RddBase& rdd, int p) const;
  void SweepExecutors();

  AppState& app_;
  sim::Context& ctx_;
};

// ===========================================================================
// User handles
// ===========================================================================

template <typename T>
class Rdd {
 public:
  Rdd(SparkContext* sc, std::shared_ptr<TypedRdd<T>> node)
      : sc_(sc), node_(std::move(node)) {}

  [[nodiscard]] int num_partitions() const { return node_->num_partitions(); }
  [[nodiscard]] const std::shared_ptr<TypedRdd<T>>& node() const {
    return node_;
  }
  [[nodiscard]] SparkContext* context() const { return sc_; }

  // -- transformations (lazy) ----------------------------------------------

  template <typename U>
  Rdd<U> Map(std::function<U(const T&)> fn) const {
    return Rdd<U>(sc_, std::make_shared<MapNode<T, U>>(
                           sc_->NewRddId(), node_, std::move(fn), false));
  }

  template <typename U>
  Rdd<U> FlatMap(std::function<std::vector<U>(const T&)> fn) const {
    return Rdd<U>(sc_, std::make_shared<FlatMapNode<T, U>>(
                           sc_->NewRddId(), node_, std::move(fn)));
  }

  Rdd<T> Filter(std::function<bool(const T&)> pred) const {
    return Rdd<T>(sc_, std::make_shared<FilterNode<T>>(
                           sc_->NewRddId(), node_, std::move(pred)));
  }

  /// rdd.union(other): concatenation of partitions; narrow, no shuffle.
  Rdd<T> Union(const Rdd<T>& other) const {
    return Rdd<T>(sc_, std::make_shared<UnionNode<T>>(sc_->NewRddId(), node_,
                                                      other.node()));
  }

  /// rdd.distinct(): one shuffle, keyed on the element itself.
  Rdd<T> Distinct(int num_partitions = 0) const {
    auto keyed =
        KeyBy<T>([](const T& item) { return item; })
            .template MapValues<std::uint8_t>(
                [](const T&) { return std::uint8_t{1}; })
            .ReduceByKey([](std::uint8_t a, std::uint8_t) { return a; },
                         num_partitions);
    return keyed.Keys();
  }

  /// Turn into a pair RDD by deriving a key per element.
  template <typename K>
  PairRdd<K, T> KeyBy(std::function<K(const T&)> key_fn) const;

  /// View a pair-typed RDD as a PairRdd (T must be std::pair<K, V>).
  template <typename K, typename V>
  PairRdd<K, V> AsPairs() const;

  // -- persistence ------------------------------------------------------------

  Rdd<T>& Persist(StorageLevel level = StorageLevel::kMemoryOnly) {
    node_->storage_level = level;
    return *this;
  }
  Rdd<T>& Cache() { return Persist(StorageLevel::kMemoryOnly); }
  void Unpersist() {
    node_->storage_level = StorageLevel::kNone;
    sc_->Unpersist(node_->id());
  }

  // -- actions -----------------------------------------------------------------

  Result<std::vector<T>> Collect() const {
    auto node = node_;
    auto buffers = sc_->RunJob(node, [node](TaskRt& rt, int p) {
      auto part = rt.EvaluateTyped<T>(*node, p);
      return serde::EncodeToBytes(*part);
    });
    if (!buffers.ok()) return buffers.status();
    std::vector<T> out;
    for (const buf::Bytes& buffer : buffers.value()) {
      auto part = serde::DecodeFromBytes<std::vector<T>>(buffer);
      if (!part.ok()) return part.status();
      for (auto& item : part.value()) out.push_back(std::move(item));
    }
    return out;
  }

  Result<std::int64_t> Count() const {
    auto node = node_;
    auto buffers = sc_->RunJob(node, [node](TaskRt& rt, int p) {
      auto part = rt.EvaluateTyped<T>(*node, p);
      return serde::EncodeToBytes<std::uint64_t>(part->size());
    });
    if (!buffers.ok()) return buffers.status();
    std::int64_t total = 0;
    for (const buf::Bytes& buffer : buffers.value()) {
      auto n = serde::DecodeFromBytes<std::uint64_t>(buffer);
      if (!n.ok()) return n.status();
      total += static_cast<std::int64_t>(n.value());
    }
    return total;
  }

  /// rdd.reduce(f): executor-side partial fold, driver-side final fold.
  Result<T> Reduce(std::function<T(const T&, const T&)> fn) const {
    auto node = node_;
    auto buffers = sc_->RunJob(node, [node, fn](TaskRt& rt, int p) {
      auto part = rt.EvaluateTyped<T>(*node, p);
      std::vector<T> partial;
      if (!part->empty()) {
        T acc = (*part)[0];
        for (std::size_t i = 1; i < part->size(); ++i) {
          acc = fn(acc, (*part)[i]);
        }
        partial.push_back(std::move(acc));
      }
      rt.ChargeRecords(part->size(), 0);
      return serde::EncodeToBytes(partial);
    });
    if (!buffers.ok()) return buffers.status();
    std::optional<T> acc;
    for (const buf::Bytes& buffer : buffers.value()) {
      auto partial = serde::DecodeFromBytes<std::vector<T>>(buffer);
      if (!partial.ok()) return partial.status();
      for (const T& value : partial.value()) {
        acc = acc.has_value() ? fn(*acc, value) : value;
      }
    }
    if (!acc.has_value()) return InvalidArgument("reduce of empty RDD");
    return *acc;
  }

 private:
  SparkContext* sc_;
  std::shared_ptr<TypedRdd<T>> node_;
};

template <typename K, typename V>
class PairRdd {
 public:
  using P = std::pair<K, V>;
  PairRdd(SparkContext* sc, std::shared_ptr<TypedRdd<P>> node)
      : sc_(sc), node_(std::move(node)) {}

  [[nodiscard]] int num_partitions() const { return node_->num_partitions(); }
  [[nodiscard]] const std::shared_ptr<TypedRdd<P>>& node() const {
    return node_;
  }
  [[nodiscard]] std::optional<int> partitioner() const {
    return node_->partitioner;
  }
  [[nodiscard]] Rdd<P> AsRdd() const { return Rdd<P>(sc_, node_); }

  template <typename V2>
  PairRdd<K, V2> MapValues(std::function<V2(const V&)> fn) const {
    auto mapped = std::make_shared<MapNode<P, std::pair<K, V2>>>(
        sc_->NewRddId(), node_,
        [fn](const P& kv) {
          return std::pair<K, V2>(kv.first, fn(kv.second));
        },
        /*preserves_partitioning=*/true);
    return PairRdd<K, V2>(sc_, mapped);
  }

  Rdd<K> Keys() const {
    return AsRdd().template Map<K>([](const P& kv) { return kv.first; });
  }
  Rdd<V> Values() const {
    return AsRdd().template Map<V>([](const P& kv) { return kv.second; });
  }

  /// reduceByKey with map-side combine (one shuffle).
  PairRdd<K, V> ReduceByKey(std::function<V(V, V)> fn,
                            int num_partitions = 0) const {
    const int reduces = ResolveParts(num_partitions);
    auto merge2 = fn;
    auto dep = std::make_shared<ShuffleDepImpl<K, V, V>>(
        sc_->NewShuffleId(), node_, reduces, /*aggregate=*/true,
        [](const V& v) { return v; },
        [fn](V acc, const V& v) { return fn(std::move(acc), v); });
    sc_->RegisterShuffle(dep->shuffle_id(), node_->num_partitions(), reduces);
    auto shuffled = std::make_shared<ShuffledNode<K, V>>(
        sc_->NewRddId(), dep, /*aggregate=*/true,
        [merge2](V a, V b) { return merge2(std::move(a), std::move(b)); });
    return PairRdd<K, V>(sc_, shuffled);
  }

  PairRdd<K, std::vector<V>> GroupByKey(int num_partitions = 0) const {
    const int reduces = ResolveParts(num_partitions);
    auto dep = std::make_shared<ShuffleDepImpl<K, V, std::vector<V>>>(
        sc_->NewShuffleId(), node_, reduces, /*aggregate=*/true,
        [](const V& v) { return std::vector<V>{v}; },
        [](std::vector<V> acc, const V& v) {
          acc.push_back(v);
          return acc;
        });
    sc_->RegisterShuffle(dep->shuffle_id(), node_->num_partitions(), reduces);
    auto shuffled = std::make_shared<ShuffledNode<K, std::vector<V>>>(
        sc_->NewRddId(), dep, /*aggregate=*/true,
        [](std::vector<V> a, std::vector<V> b) {
          for (auto& v : b) a.push_back(std::move(v));
          return a;
        });
    return PairRdd<K, std::vector<V>>(sc_, shuffled);
  }

  /// Hash-repartition, keeping raw pairs (sets the partitioner, enabling
  /// narrow joins downstream — the BigDataBench PageRank tuning).
  PairRdd<K, V> PartitionBy(int num_partitions) const {
    auto dep = std::make_shared<ShuffleDepImpl<K, V, V>>(
        sc_->NewShuffleId(), node_, num_partitions, /*aggregate=*/false,
        [](const V& v) { return v; },
        [](V acc, const V&) { return acc; });
    sc_->RegisterShuffle(dep->shuffle_id(), node_->num_partitions(),
                         num_partitions);
    auto shuffled = std::make_shared<ShuffledNode<K, V>>(
        sc_->NewRddId(), dep, /*aggregate=*/false, [](V a, V) { return a; });
    return PairRdd<K, V>(sc_, shuffled);
  }

  /// Inner join. Narrow (no shuffle) when both sides already share the
  /// same hash partitioner; otherwise both sides shuffle.
  template <typename W>
  PairRdd<K, std::pair<V, W>> Join(const PairRdd<K, W>& other,
                                   int num_partitions = 0) const {
    if (node_->partitioner.has_value() &&
        node_->partitioner == other.node()->partitioner) {
      auto joined = std::make_shared<NarrowJoinNode<K, V, W>>(
          sc_->NewRddId(), node_, other.node());
      return PairRdd<K, std::pair<V, W>>(sc_, joined);
    }
    const int reduces = ResolveParts(num_partitions);
    auto left_dep = std::make_shared<ShuffleDepImpl<K, V, V>>(
        sc_->NewShuffleId(), node_, reduces, /*aggregate=*/false,
        [](const V& v) { return v; }, [](V acc, const V&) { return acc; });
    sc_->RegisterShuffle(left_dep->shuffle_id(), node_->num_partitions(),
                         reduces);
    auto right_dep = std::make_shared<ShuffleDepImpl<K, W, W>>(
        sc_->NewShuffleId(), other.node(), reduces, /*aggregate=*/false,
        [](const W& w) { return w; }, [](W acc, const W&) { return acc; });
    sc_->RegisterShuffle(right_dep->shuffle_id(),
                         other.node()->num_partitions(), reduces);
    auto joined = std::make_shared<ShuffledJoinNode<K, V, W>>(
        sc_->NewRddId(), left_dep, right_dep);
    return PairRdd<K, std::pair<V, W>>(sc_, joined);
  }

  PairRdd<K, V>& Persist(StorageLevel level = StorageLevel::kMemoryOnly) {
    node_->storage_level = level;
    return *this;
  }
  void Unpersist() {
    node_->storage_level = StorageLevel::kNone;
    sc_->Unpersist(node_->id());
  }

  Result<std::int64_t> Count() const { return AsRdd().Count(); }
  Result<std::vector<P>> Collect() const { return AsRdd().Collect(); }
  Result<std::map<K, V>> CollectAsMap() const {
    auto pairs = Collect();
    if (!pairs.ok()) return pairs.status();
    std::map<K, V> out;
    for (auto& [key, value] : pairs.value()) out[key] = value;
    return out;
  }

 private:
  int ResolveParts(int requested) const {
    if (requested > 0) return requested;
    if (node_->partitioner.has_value()) return *node_->partitioner;
    return node_->num_partitions();
  }
  SparkContext* sc_;
  std::shared_ptr<TypedRdd<P>> node_;
};

// -- deferred handle methods -------------------------------------------------

template <typename T>
template <typename K>
PairRdd<K, T> Rdd<T>::KeyBy(std::function<K(const T&)> key_fn) const {
  auto mapped = std::make_shared<MapNode<T, std::pair<K, T>>>(
      sc_->NewRddId(), node_,
      [key_fn](const T& item) { return std::pair<K, T>(key_fn(item), item); },
      false);
  return PairRdd<K, T>(sc_, mapped);
}

template <typename T>
template <typename K, typename V>
PairRdd<K, V> Rdd<T>::AsPairs() const {
  static_assert(std::is_same_v<T, std::pair<K, V>>,
                "AsPairs requires T == std::pair<K, V>");
  return PairRdd<K, V>(sc_, node_);
}

template <typename T>
Rdd<T> SparkContext::Parallelize(std::vector<T> data, int slices) {
  if (slices <= 0) slices = default_parallelism();
  auto node = std::make_shared<ParallelizeNode<T>>(NewRddId(),
                                                   std::move(data), slices);
  return Rdd<T>(this, node);
}

// ===========================================================================
// Deployment
// ===========================================================================

struct AppResult {
  SimTime elapsed = 0;  // spark-submit to driver exit (incl. startup)
  AppStats stats;
};

class MiniSpark {
 public:
  using DriverBody = std::function<void(SparkContext&)>;

  /// `dfs` may be null for apps that only use local files / parallelize.
  MiniSpark(cluster::Cluster& cluster, dfs::MiniDfs* dfs,
            SparkOptions options = {});

  /// Spawn driver + executors; the caller runs the engine.
  void Submit(DriverBody body, std::function<void(Result<AppResult>)> on_done);

  /// Submit + engine.Run(); the common standalone path.
  Result<AppResult> RunApp(DriverBody body);

  /// Elastic growth: spawn one more executor on `node` (requires
  /// SparkOptions::max_executors headroom). Returns the new executor id.
  /// The driver picks it up on its next task round.
  int AddExecutor(int node);
  /// Elastic shrink: kill executor `executor_id`. Its shuffle/cache state
  /// is dropped by the driver's sweep and lineage recomputes what's needed.
  void RemoveExecutor(int executor_id);

  [[nodiscard]] AppState& app() { return *app_; }

 private:
  void DriverMain(sim::Context& ctx, DriverBody body,
                  std::function<void(Result<AppResult>)> on_done);
  void ExecutorMain(sim::Context& ctx, int executor_id);

  cluster::Cluster& cluster_;
  std::shared_ptr<AppState> app_;
};

}  // namespace pstk::spark
