#include "spark/runtime.h"

#include <algorithm>

#include "common/check.h"

namespace pstk::spark {

// ---------------------------------------------------------------------------
// ShuffleStore
// ---------------------------------------------------------------------------

void ShuffleStore::Register(int shuffle_id, int num_maps, int num_reduces) {
  auto it = shuffles_.find(shuffle_id);
  if (it != shuffles_.end()) {
    PSTK_CHECK_MSG(it->second.num_maps == num_maps &&
                       it->second.num_reduces == num_reduces,
                   "shuffle " << shuffle_id << " re-registered with different"
                              << " shape");
    return;
  }
  Shuffle shuffle;
  shuffle.num_maps = num_maps;
  shuffle.num_reduces = num_reduces;
  shuffles_.emplace(shuffle_id, std::move(shuffle));
}

bool ShuffleStore::IsRegistered(int shuffle_id) const {
  return shuffles_.count(shuffle_id) > 0;
}

void ShuffleStore::PutMapOutput(int shuffle_id, int map_partition,
                                MapOutput output) {
  auto it = shuffles_.find(shuffle_id);
  PSTK_CHECK_MSG(it != shuffles_.end(), "unknown shuffle " << shuffle_id);
  output.total_bytes = 0;
  for (const auto& bucket : output.buckets) output.total_bytes += bucket.size();
  total_bytes_ += output.total_bytes;
  it->second.outputs[map_partition] = std::move(output);
}

const ShuffleStore::MapOutput* ShuffleStore::GetMapOutput(
    int shuffle_id, int map_partition) const {
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) return nullptr;
  auto out = it->second.outputs.find(map_partition);
  return out == it->second.outputs.end() ? nullptr : &out->second;
}

bool ShuffleStore::Complete(int shuffle_id) const {
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) return false;
  return static_cast<int>(it->second.outputs.size()) == it->second.num_maps;
}

std::vector<int> ShuffleStore::MissingMaps(int shuffle_id) const {
  std::vector<int> missing;
  auto it = shuffles_.find(shuffle_id);
  if (it == shuffles_.end()) return missing;
  for (int m = 0; m < it->second.num_maps; ++m) {
    if (it->second.outputs.count(m) == 0) missing.push_back(m);
  }
  return missing;
}

int ShuffleStore::NumMaps(int shuffle_id) const {
  auto it = shuffles_.find(shuffle_id);
  return it == shuffles_.end() ? 0 : it->second.num_maps;
}

void ShuffleStore::DropExecutor(int executor) {
  for (auto& [id, shuffle] : shuffles_) {
    for (auto it = shuffle.outputs.begin(); it != shuffle.outputs.end();) {
      if (it->second.executor == executor) {
        it = shuffle.outputs.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BlockStore
// ---------------------------------------------------------------------------

void BlockStore::Touch(const Key& key) {
  lru_.remove(key);
  lru_.push_back(key);
}

std::optional<BlockStore::Block> BlockStore::Put(int executor, int rdd,
                                                 int partition, Block block,
                                                 Bytes* spilled_to_disk_bytes) {
  *spilled_to_disk_bytes = 0;
  const Key key{executor, rdd, partition};
  PSTK_CHECK_MSG(block.level != StorageLevel::kNone, "Put with kNone level");

  // Re-caching an existing block: release its old accounting first.
  if (auto existing = blocks_.find(key); existing != blocks_.end()) {
    if (!existing->second.on_disk) {
      memory_used_[executor] -= existing->second.modeled_size;
    }
    lru_.remove(key);
    blocks_.erase(existing);
  }

  if (block.level == StorageLevel::kDiskOnly) {
    block.on_disk = true;
    *spilled_to_disk_bytes += block.modeled_size;
    blocks_[key] = block;
    return block;
  }

  // Memory path: evict LRU blocks of this executor until it fits.
  Bytes& used = memory_used_[executor];
  if (block.modeled_size <= budget_) {
    auto it = lru_.begin();
    while (used + block.modeled_size > budget_ && it != lru_.end()) {
      if (it->executor != executor) {
        ++it;
        continue;
      }
      const Key victim_key = *it;
      Block& victim = blocks_.at(victim_key);
      if (victim.on_disk) {
        ++it;
        continue;  // already on disk, no memory held... defensive
      }
      used -= victim.modeled_size;
      if (victim.level == StorageLevel::kMemoryAndDisk) {
        victim.on_disk = true;
        *spilled_to_disk_bytes += victim.modeled_size;
        it = lru_.erase(it);
      } else {
        blocks_.erase(victim_key);
        it = lru_.erase(it);
      }
    }
  }

  if (block.modeled_size <= budget_ &&
      used + block.modeled_size <= budget_) {
    used += block.modeled_size;
    block.on_disk = false;
    blocks_[key] = block;
    Touch(key);
    return block;
  }

  // Does not fit in memory at all.
  if (block.level == StorageLevel::kMemoryAndDisk) {
    block.on_disk = true;
    *spilled_to_disk_bytes += block.modeled_size;
    blocks_[key] = block;
    return block;
  }
  return std::nullopt;  // MEMORY_ONLY and no room: not cached
}

const BlockStore::Block* BlockStore::Lookup(int executor, int rdd,
                                            int partition) const {
  auto it = blocks_.find(Key{executor, rdd, partition});
  if (it == blocks_.end()) return nullptr;
  if (!it->second.on_disk) {
    const_cast<BlockStore*>(this)->Touch(it->first);
  }
  return &it->second;
}

std::vector<int> BlockStore::CachedExecutors(int rdd, int partition) const {
  std::vector<int> executors;
  for (const auto& [key, block] : blocks_) {
    if (key.rdd == rdd && key.partition == partition) {
      executors.push_back(key.executor);
    }
  }
  return executors;
}

void BlockStore::DropExecutor(int executor) {
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.executor == executor) {
      lru_.remove(it->first);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  memory_used_.erase(executor);
}

void BlockStore::DropRdd(int rdd) {
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.rdd == rdd) {
      if (!it->second.on_disk) {
        memory_used_[it->first.executor] -= it->second.modeled_size;
      }
      lru_.remove(it->first);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

Bytes BlockStore::memory_used(int executor) const {
  auto it = memory_used_.find(executor);
  return it == memory_used_.end() ? 0 : it->second;
}

}  // namespace pstk::spark
