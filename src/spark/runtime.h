// MiniSpark runtime state shared between the driver and executors:
// options, the shuffle output registry, and the block manager (RDD cache).
//
// Everything here is engine-global data manipulated under the simulator's
// cooperative scheduling (never concurrently), mirroring state that real
// Spark keeps in the driver's MapOutputTracker / BlockManagerMaster.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "buf/bytes.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "serde/serde.h"

namespace pstk::spark {

enum class StorageLevel : std::uint8_t {
  kNone = 0,
  kMemoryOnly,
  kMemoryAndDisk,
  kDiskOnly,
};

struct SparkOptions {
  /// The paper runs 8 or 16 single-core executor processes per node.
  int executors_per_node = 8;
  /// Fraction of (node memory / executors per node) usable for RDD cache.
  double storage_memory_fraction = 0.6;
  /// Use the RDMA shuffle engine (Lu et al.) instead of Java sockets.
  /// Orchestration always stays on sockets, matching the plugin.
  bool rdma_shuffle = false;
  /// Re-spawn executor processes on nodes that came back after a failure
  /// (standalone-master worker re-registration). Off by default: the
  /// paper's runs keep a fixed executor set for the app's lifetime.
  bool reacquire_executors = false;

  /// Transport for driver<->executor control traffic (Java sockets).
  net::TransportParams control_transport = net::TransportParams::IPoIB();
  /// Transport for socket-mode shuffle traffic.
  net::TransportParams shuffle_transport = net::TransportParams::IPoIB();
  /// Transport for RDMA-mode shuffle traffic.
  net::TransportParams rdma_transport = net::TransportParams::RdmaFdr();

  /// spark-submit + executor JVM launch before the driver program runs.
  SimTime app_startup = Seconds(4.0);
  /// Driver-side cost per job (DAG build, stage submission).
  SimTime driver_per_job = Millis(60);
  /// Driver-side cost per task (serialize closure, bookkeeping).
  SimTime driver_per_task = Millis(0.15);
  /// Executor-side cost per task (deserialize, thread handoff).
  SimTime executor_per_task = Millis(1.0);
  /// JVM per-record transformation cost (boxed objects, iterator chains,
  /// hash-aggregation inserts — Scala/Java 7 era).
  SimTime cpu_per_record = Nanos(300);
  /// JVM per-byte processing cost. Calibrated from the paper's own Table
  /// II: 80 GB over 8 nodes x 8 executors in ~30 s is ~42 MB/s per core of
  /// JVM text pipeline (line objects, iterators, codecs) — Java 7 vintage.
  SimTime cpu_per_byte = 1.0 / 42e6;
  /// Size multiplier of JavaSerializer output over compact binary (boxed
  /// objects, class descriptors): shuffle bytes on the wire/disk and the
  /// serde CPU both scale by it.
  double java_serialization_factor = 4.0;
  /// Serialized size of a plain task closure message.
  Bytes task_message_bytes = 8 * kKiB;
  /// Split size for local (non-DFS) text files.
  Bytes local_split_bytes = 128 * kMiB;
  /// Driver poll period for executor liveness.
  SimTime heartbeat = Seconds(1.0);
  /// Default partition count for parallelize (0 = total executor count).
  int default_parallelism = 0;

  /// Explicit executor->node placement: one executor per entry, overriding
  /// the nodes x executors_per_node grid. pstk::sched's elastic placement
  /// starts apps on whatever cores it could allocate.
  std::vector<int> executor_nodes;
  /// Node hosting the driver process (client mode).
  int driver_node = 0;
  /// Executor-id headroom for executors added after construction
  /// (MiniSpark::AddExecutor); 0 = fixed executor set, no growth.
  int max_executors = 0;
  /// Prefix for spawned process names.
  std::string name = "spark";
};

/// Type-erased materialized partition (points to a std::vector<T>).
using PartitionHandle = std::shared_ptr<void>;

/// Thrown by a task when shuffle outputs it needs are gone (executor died).
/// The driver reruns the owning map stage.
struct FetchFailed {
  int shuffle_id;
};

/// Registry of shuffle map outputs (driver's MapOutputTracker + the data).
class ShuffleStore {
 public:
  struct MapOutput {
    int executor = -1;
    int node = -1;
    std::vector<buf::Bytes> buckets;  // one per reduce partition
    Bytes total_bytes = 0;
  };

  /// Declare a shuffle (idempotent).
  void Register(int shuffle_id, int num_maps, int num_reduces);
  [[nodiscard]] bool IsRegistered(int shuffle_id) const;

  void PutMapOutput(int shuffle_id, int map_partition, MapOutput output);
  /// nullptr if that map output is absent (never computed or lost).
  [[nodiscard]] const MapOutput* GetMapOutput(int shuffle_id,
                                              int map_partition) const;
  [[nodiscard]] bool Complete(int shuffle_id) const;
  [[nodiscard]] std::vector<int> MissingMaps(int shuffle_id) const;
  [[nodiscard]] int NumMaps(int shuffle_id) const;

  /// Lose every output produced by `executor` (its process died).
  void DropExecutor(int executor);

  [[nodiscard]] Bytes total_shuffle_bytes() const { return total_bytes_; }

 private:
  struct Shuffle {
    int num_maps = 0;
    int num_reduces = 0;
    std::map<int, MapOutput> outputs;
  };
  std::map<int, Shuffle> shuffles_;
  Bytes total_bytes_ = 0;
};

/// Per-executor RDD cache with memory accounting, LRU eviction, and
/// MEMORY_AND_DISK spill (the BlockManager).
class BlockStore {
 public:
  struct Block {
    PartitionHandle data;
    Bytes modeled_size = 0;
    StorageLevel level = StorageLevel::kNone;
    bool on_disk = false;  // spilled (or DISK_ONLY)
  };

  explicit BlockStore(Bytes memory_budget_per_executor)
      : budget_(memory_budget_per_executor) {}

  /// Cache a computed partition. Returns the block as stored (possibly
  /// spilled to disk) — or nullopt if it could not be cached at all.
  /// `spilled_bytes`/`evicted` report what eviction did, so the caller can
  /// charge disk time.
  std::optional<Block> Put(int executor, int rdd, int partition, Block block,
                           Bytes* spilled_to_disk_bytes);

  [[nodiscard]] const Block* Lookup(int executor, int rdd,
                                    int partition) const;
  /// Executors holding a cached copy of (rdd, partition), for locality.
  [[nodiscard]] std::vector<int> CachedExecutors(int rdd,
                                                 int partition) const;

  void DropExecutor(int executor);
  /// unpersist(): drop every cached copy of the RDD.
  void DropRdd(int rdd);

  [[nodiscard]] Bytes memory_used(int executor) const;
  [[nodiscard]] Bytes budget() const { return budget_; }

 private:
  struct Key {
    int executor;
    int rdd;
    int partition;
    auto operator<=>(const Key&) const = default;
  };
  void Touch(const Key& key);

  Bytes budget_;
  std::map<Key, Block> blocks_;
  std::map<int, Bytes> memory_used_;
  std::list<Key> lru_;  // front = least recently used
};

}  // namespace pstk::spark
