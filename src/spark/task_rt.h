// Executor-side services available to RDD compute closures. The
// implementation (spark.cc) charges the simulated costs: JVM per-record
// CPU, shuffle transport (sockets or RDMA), DFS/local disk reads, and
// BlockManager caching with spill.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "buf/bytes.h"
#include "common/status.h"
#include "common/units.h"
#include "serde/serde.h"
#include "sim/engine.h"
#include "spark/runtime.h"

namespace pstk::spark {

class RddBase;
struct AppState;

class TaskRt {
 public:
  TaskRt(AppState& app, sim::Context& ctx, int executor, int node)
      : app_(app), ctx_(ctx), executor_(executor), node_(node) {}

  [[nodiscard]] sim::Context& ctx() { return ctx_; }
  [[nodiscard]] int executor() const { return executor_; }
  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] double data_scale() const;

  /// JVM CPU charge for processing `records`/`bytes` of *actual* staged
  /// data (inflated to logical scale internally).
  void ChargeRecords(std::uint64_t records, Bytes bytes);

  /// Like ChargeRecords, but for shuffle serialization/deserialization:
  /// bytes are scaled by the Java-serialization bloat factor.
  void ChargeSerde(std::uint64_t records, Bytes actual_bytes);

  /// Materialize partition `p` of `rdd`: cache lookup, recursive compute,
  /// cache store (with disk spill charging) per the RDD's storage level.
  PartitionHandle Evaluate(RddBase& rdd, int p);

  template <typename T>
  std::shared_ptr<std::vector<T>> EvaluateTyped(RddBase& rdd, int p) {
    return std::static_pointer_cast<std::vector<T>>(Evaluate(rdd, p));
  }

  /// Fetch every map output bucket for `reduce_partition`, charging
  /// transport on the shuffle fabric (socket or RDMA per options). The
  /// returned buffers alias the map outputs in the shuffle store (refcount
  /// bumps, no payload copy) and stay valid even if the owning executor
  /// dies afterwards. Throws FetchFailed when outputs are missing (their
  /// executor died before the fetch completed).
  std::vector<buf::Bytes> FetchShuffle(int shuffle_id, int reduce_partition);

  /// Persist map-task output buckets: local shuffle-file write + registry.
  void CommitShuffleOutput(int shuffle_id, int map_partition,
                           std::vector<buf::Bytes> buckets);

  /// Read one block of a MiniDFS file (locality-aware, charged). The result
  /// aliases the stored block — no payload copy.
  Result<buf::Bytes> ReadDfsBlock(const std::string& path, std::size_t block);

  /// Read an actual-byte range of a file on this node's local scratch.
  /// The result aliases the stored file — no payload copy.
  Result<buf::Bytes> ReadLocalRange(const std::string& path, Bytes offset,
                                    Bytes length);

  /// Read exactly the whole lines *starting* inside [offset, offset+length)
  /// of a local file (Hadoop LineRecordReader semantics, boundary-exact —
  /// no lookahead waste). Ranges tiling the file yield each line once.
  /// The result aliases the stored file — no payload copy.
  Result<buf::Bytes> ReadLocalLines(const std::string& path, Bytes offset,
                                    Bytes length);

 private:
  AppState& app_;
  sim::Context& ctx_;
  int executor_;
  int node_;
};

}  // namespace pstk::spark
