#include "spark/spark.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/check.h"
#include "common/log.h"

namespace pstk::spark {

namespace {

// Control-plane message tags.
constexpr int kTagTask = 1;      // driver -> executor
constexpr int kTagTaskDone = 2;  // executor -> driver
constexpr int kTagTaskFail = 3;  // executor -> driver (fetch failure)
constexpr int kTagExit = 4;      // driver -> executor

struct TaskHeader {
  std::uint64_t task_set = 0;
  std::int32_t partition = 0;
};

// Task messages carry a fixed 12-byte header (task_set, partition).
constexpr std::size_t kTaskHeaderBytes = 12;

buf::Bytes EncodeTask(std::uint64_t task_set, int partition) {
  serde::Writer w;
  w.Reserve(kTaskHeaderBytes);
  w.WriteRaw<std::uint64_t>(task_set);
  w.WriteRaw<std::int32_t>(partition);
  return w.TakeBytes();
}

buf::Bytes EncodeTaskDone(std::uint64_t task_set, int partition,
                          buf::Bytes result) {
  serde::Writer w;
  w.Reserve(kTaskHeaderBytes);
  w.WriteRaw<std::uint64_t>(task_set);
  w.WriteRaw<std::int32_t>(partition);
  // Rope-concat: the task result rides along without being copied.
  return buf::Bytes::Concat({w.TakeBytes(), std::move(result)});
}

buf::Bytes EncodeTaskFail(std::uint64_t task_set, int partition,
                          int shuffle_id) {
  serde::Writer w;
  w.Reserve(kTaskHeaderBytes + 4);
  w.WriteRaw<std::uint64_t>(task_set);
  w.WriteRaw<std::int32_t>(partition);
  w.WriteRaw<std::int32_t>(shuffle_id);
  return w.TakeBytes();
}

/// Decode the header of a (possibly rope) task message: the header slice
/// is always flat because every encoder writes it as one chunk.
TaskHeader DecodeHeader(const buf::Bytes& payload) {
  // The slice is a temporary, but the chunk it points into is owned by
  // `payload`, so the reader's view stays valid.
  serde::Reader r(payload.Slice(0, kTaskHeaderBytes));
  TaskHeader h;
  h.task_set = r.ReadRaw<std::uint64_t>().value();
  h.partition = r.ReadRaw<std::int32_t>().value();
  return h;
}

/// Collect every lineage edge (child -> parent) reachable from `rdd` for
/// the verify hub's acyclicity check.
void CollectLineage(RddBase& rdd, std::set<int>& seen,
                    std::vector<verify::LineageEdge>& out) {
  if (!seen.insert(rdd.id()).second) return;
  for (const auto& parent : rdd.narrow_parents) {
    out.push_back(verify::LineageEdge{rdd.id(), parent->id()});
    CollectLineage(*parent, seen, out);
  }
  for (const auto& dep : rdd.shuffle_deps) {
    out.push_back(verify::LineageEdge{rdd.id(), dep->parent_ptr()->id()});
    CollectLineage(*dep->parent_ptr(), seen, out);
  }
}

/// Collect the job's shuffle dependencies in parents-first order.
void CollectShuffleDeps(RddBase& rdd, std::set<int>& seen_rdds,
                        std::set<int>& seen_shuffles,
                        std::vector<std::shared_ptr<ShuffleDepBase>>& out) {
  if (!seen_rdds.insert(rdd.id()).second) return;
  for (const auto& parent : rdd.narrow_parents) {
    CollectShuffleDeps(*parent, seen_rdds, seen_shuffles, out);
  }
  for (const auto& dep : rdd.shuffle_deps) {
    CollectShuffleDeps(*dep->parent_ptr(), seen_rdds, seen_shuffles, out);
    if (seen_shuffles.insert(dep->shuffle_id()).second) {
      out.push_back(dep);
    }
  }
}

}  // namespace

// ===========================================================================
// TaskRt
// ===========================================================================

double TaskRt::data_scale() const { return app_.data_scale(); }

void TaskRt::ChargeRecords(std::uint64_t records, Bytes bytes) {
  const double inflate = 1.0 / app_.data_scale();
  const SimTime seconds =
      inflate *
      (static_cast<double>(records) * app_.options.cpu_per_record +
       static_cast<double>(bytes) * app_.options.cpu_per_byte);
  ctx_.Compute(seconds);
  if (app_.obs != nullptr) {
    app_.obs->Observe(app_.obs_tags.time_compute, seconds);
  }
}

void TaskRt::ChargeSerde(std::uint64_t records, Bytes actual_bytes) {
  ChargeRecords(records,
                static_cast<Bytes>(
                    static_cast<double>(actual_bytes) *
                    app_.options.java_serialization_factor));
}

PartitionHandle TaskRt::Evaluate(RddBase& rdd, int p) {
  if (rdd.storage_level != StorageLevel::kNone) {
    if (const BlockStore::Block* block =
            app_.block_store->Lookup(executor_, rdd.id(), p)) {
      ++app_.stats.cache_hits;
      if (block->on_disk) {
        const SimTime t0 = ctx_.now();
        const SimTime done = app_.cluster->scratch_disk(node_)->Read(
            block->modeled_size, t0);
        ctx_.SleepUntil(done);
        if (app_.obs != nullptr) {
          app_.obs->Observe(app_.obs_tags.time_persist_io, ctx_.now() - t0);
        }
      }
      return block->data;
    }
    ++app_.stats.cache_misses;
  }

  PartitionHandle data = rdd.Compute(*this, p);
  if (app_.verify != nullptr) {
    app_.verify->OnSparkPartitionComputed(
        rdd.id(), p, rdd.storage_level != StorageLevel::kNone, ctx_.now());
  }

  if (rdd.storage_level != StorageLevel::kNone) {
    BlockStore::Block block;
    block.data = data;
    block.modeled_size = app_.Modeled(rdd.SizeOf(data));
    block.level = rdd.storage_level;
    Bytes spilled = 0;
    app_.block_store->Put(executor_, rdd.id(), p, block, &spilled);
    if (spilled > 0) {
      app_.stats.cache_spilled_bytes += spilled;
      const SimTime t0 = ctx_.now();
      const SimTime done =
          app_.cluster->scratch_disk(node_)->Write(spilled, t0);
      ctx_.SleepUntil(done);
      if (app_.obs != nullptr) {
        app_.obs->Observe(app_.obs_tags.time_persist_io, ctx_.now() - t0);
      }
    }
  }
  return data;
}

std::vector<buf::Bytes> TaskRt::FetchShuffle(int shuffle_id,
                                             int reduce_partition) {
  const int num_maps = app_.shuffle_store.NumMaps(shuffle_id);
  std::vector<buf::Bytes> buffers;
  buffers.reserve(static_cast<std::size_t>(num_maps));
  const SimTime t0 = ctx_.now();
  SimTime last_arrival = ctx_.now();
  SimTime cpu = 0;
  for (int m = 0; m < num_maps; ++m) {
    const ShuffleStore::MapOutput* output =
        app_.shuffle_store.GetMapOutput(shuffle_id, m);
    if (output == nullptr || !app_.ExecutorAlive(output->executor)) {
      if (app_.verify != nullptr && app_.verify->active()) {
        int ready = 0;
        for (int i = 0; i < num_maps; ++i) {
          const ShuffleStore::MapOutput* o =
              app_.shuffle_store.GetMapOutput(shuffle_id, i);
          if (o != nullptr && app_.ExecutorAlive(o->executor)) ++ready;
        }
        // The stage barrier broke (a reducer started with map outputs
        // missing), but lineage-based recovery will recompute them.
        app_.verify->OnStageBarrier("spark", shuffle_id, ready, num_maps,
                                    /*will_recover=*/true, ctx_.now());
      }
      throw FetchFailed{shuffle_id};
    }
    const buf::Bytes& bucket =
        output->buckets[static_cast<std::size_t>(reduce_partition)];
    const Bytes modeled = app_.Modeled(static_cast<Bytes>(
        static_cast<double>(bucket.size()) *
        app_.options.java_serialization_factor));
    if (output->executor == executor_) {
      app_.stats.shuffle_local_bytes += modeled;
      if (app_.obs != nullptr) {
        app_.obs->Add(app_.obs_tags.bytes_local, modeled);
      }
      continue;  // served from the local shuffle file / page cache
    }
    app_.stats.shuffle_fetched_bytes += modeled;
    if (app_.obs != nullptr) {
      app_.obs->Add(app_.options.rdma_shuffle ? app_.obs_tags.bytes_rdma
                                              : app_.obs_tags.bytes_socket,
                    modeled);
    }
    // All fetches are issued concurrently (Spark opens several streams);
    // NIC timelines provide the serialization.
    const auto times = app_.shuffle_fabric->Transfer(output->node, node_,
                                                     modeled, ctx_.now());
    cpu += times.receiver_cpu;
    last_arrival = std::max(last_arrival, times.arrival);
  }
  ctx_.Compute(cpu);
  ctx_.SleepUntil(last_arrival);
  // While this task slept on the fetch, a node failure may have dropped an
  // executor's map outputs (DropExecutor erases them; a re-run's
  // PutMapOutput replaces them). A reducer must not consume data whose
  // producer died mid-fetch — the real transfer would have broken — so
  // only now, with virtual time advanced past the transfer, alias the
  // surviving buckets (refcount bumps, no copy) and treat any loss as a
  // fetch failure so the driver reruns the map stage.
  for (int m = 0; m < num_maps; ++m) {
    const ShuffleStore::MapOutput* output =
        app_.shuffle_store.GetMapOutput(shuffle_id, m);
    if (output == nullptr || !app_.ExecutorAlive(output->executor)) {
      throw FetchFailed{shuffle_id};
    }
    buffers.push_back(
        output->buckets[static_cast<std::size_t>(reduce_partition)]);
  }
  Bytes fetched = 0;
  for (const buf::Bytes& bucket : buffers) fetched += bucket.size();
  if (app_.obs != nullptr) {
    app_.obs->Add(app_.obs_tags.bytes_fetched, fetched);
    app_.obs->Observe(app_.obs_tags.time_shuffle_net, ctx_.now() - t0);
  }
  return buffers;
}

void TaskRt::CommitShuffleOutput(int shuffle_id, int map_partition,
                                 std::vector<buf::Bytes> buckets) {
  Bytes total = 0;
  for (const auto& bucket : buckets) total += bucket.size();
  const Bytes modeled = app_.Modeled(static_cast<Bytes>(
      static_cast<double>(total) * app_.options.java_serialization_factor));
  // Shuffle files land on the executor's local disk.
  const SimTime t0 = ctx_.now();
  const SimTime done = app_.cluster->scratch_disk(node_)->Write(modeled, t0);
  ctx_.SleepUntil(done);
  if (app_.obs != nullptr) {
    app_.obs->Observe(app_.obs_tags.time_shuffle_disk, ctx_.now() - t0);
  }

  ShuffleStore::MapOutput output;
  output.executor = executor_;
  output.node = node_;
  output.buckets = std::move(buckets);
  app_.shuffle_store.PutMapOutput(shuffle_id, map_partition,
                                  std::move(output));
}

Result<buf::Bytes> TaskRt::ReadDfsBlock(const std::string& path,
                                        std::size_t block) {
  if (app_.dfs == nullptr) {
    return FailedPrecondition("no DFS configured for this app");
  }
  return app_.dfs->ReadBlock(ctx_, node_, path, block);
}

Result<buf::Bytes> TaskRt::ReadLocalRange(const std::string& path,
                                          Bytes offset, Bytes length) {
  return app_.cluster->scratch(node_).ReadBytes(ctx_, path, offset, length);
}

Result<buf::Bytes> TaskRt::ReadLocalLines(const std::string& path,
                                          Bytes offset, Bytes length) {
  storage::LocalFs& fs = app_.cluster->scratch(node_);
  const buf::Bytes* file = fs.Peek(path);
  if (file == nullptr) return NotFound("no such file: " + path);
  const std::string_view content = file->view();
  std::size_t begin = std::min<std::size_t>(offset, content.size());
  std::size_t end = std::min<std::size_t>(offset + length, content.size());
  if (begin > 0 && content[begin - 1] != '\n') {
    const auto nl = content.find('\n', begin);
    begin = nl == std::string_view::npos ? content.size() : nl + 1;
  }
  if (end > 0 && end < content.size() && content[end - 1] != '\n') {
    const auto nl = content.find('\n', end);
    end = nl == std::string_view::npos ? content.size() : nl + 1;
  }
  if (end < begin) end = begin;
  return fs.ReadBytes(ctx_, path, begin, end - begin);
}

// ===========================================================================
// SparkContext: factories
// ===========================================================================

Result<Rdd<std::string>> SparkContext::TextFile(const std::string& path) {
  if (app_.dfs == nullptr) {
    return FailedPrecondition("no DFS configured for this app");
  }
  auto locations = app_.dfs->BlockLocations(path);
  if (!locations.ok()) return locations.status();
  auto node = std::make_shared<TextFileDfsNode>(NewRddId(), path,
                                                std::move(locations).value());
  return Rdd<std::string>(this, node);
}

Result<Rdd<std::string>> SparkContext::TextFileLocal(const std::string& path) {
  // The file must be present on every node's scratch (the paper copies it
  // there); use node 0's copy for metadata.
  auto size = app_.cluster->scratch(0).Size(path);
  if (!size.ok()) return size.status();
  for (int n = 0; n < app_.cluster->nodes(); ++n) {
    if (!app_.cluster->scratch(n).Exists(path)) {
      return FailedPrecondition("local file " + path + " missing on node " +
                                std::to_string(n));
    }
  }
  const auto actual_split = std::max<Bytes>(
      1, static_cast<Bytes>(static_cast<double>(app_.options.local_split_bytes) *
                            app_.data_scale()));
  const int splits = static_cast<int>(
      (size.value() + actual_split - 1) / std::max<Bytes>(1, actual_split));
  auto node = std::make_shared<TextFileLocalNode>(
      NewRddId(), path, size.value(), actual_split, std::max(1, splits));
  return Rdd<std::string>(this, node);
}

// ===========================================================================
// SparkContext: DAG scheduler
// ===========================================================================

std::vector<int> SparkContext::PreferredExecutors(RddBase& rdd, int p) const {
  // Cached copies win.
  if (rdd.storage_level != StorageLevel::kNone) {
    std::vector<int> cached = app_.block_store->CachedExecutors(rdd.id(), p);
    std::erase_if(cached, [&](int e) { return !app_.ExecutorAlive(e); });
    if (!cached.empty()) return cached;
  }
  // Source locality (DFS block replicas).
  const std::vector<int> nodes = rdd.PreferredNodes(p);
  if (!nodes.empty()) {
    std::vector<int> executors;
    for (const ExecutorInfo& info : app_.executors) {
      if (!app_.ExecutorAlive(info.id)) continue;
      if (std::find(nodes.begin(), nodes.end(), info.node) != nodes.end()) {
        executors.push_back(info.id);
      }
    }
    return executors;
  }
  if (!rdd.narrow_parents.empty()) {
    return PreferredExecutors(*rdd.narrow_parents.front(), p);
  }
  return {};
}

void SparkContext::SweepExecutors() {
  for (ExecutorInfo& info : app_.executors) {
    if (info.alive && !app_.ExecutorAlive(info.id)) {
      info.alive = false;
      app_.shuffle_store.DropExecutor(info.id);
      app_.block_store->DropExecutor(info.id);
      PSTK_INFO("spark") << "executor " << info.id << " on node " << info.node
                         << " lost";
    }
    // Standalone-master reacquisition: a worker on a healed node
    // re-registers and the master hands the app a fresh executor (its
    // shuffle/cache state is gone — lineage recomputes what is needed).
    if (!info.alive && app_.respawn_executor &&
        !app_.cluster->NodeFailed(info.node)) {
      app_.control->endpoint(info.id).Reap();
      app_.respawn_executor(info);
      info.alive = true;
      info.busy = false;
      app_.obs->Add(app_.obs_tags.recovery_executors_reacquired);
      PSTK_INFO("spark") << "executor " << info.id << " reacquired on node "
                         << info.node;
    }
  }
}

SparkContext::TaskSetOutcome SparkContext::RunTaskSet(
    RddBase& locality_rdd, const std::vector<int>& partitions,
    const std::function<buf::Bytes(TaskRt&, int)>& closure,
    std::map<int, buf::Bytes>* results) {
  TaskSetOutcome outcome;
  if (partitions.empty()) return outcome;

  sim::Scope stage_scope(ctx_, app_.obs_tags.stage);
  const std::uint64_t task_set = app_.next_task_set++;
  app_.closures[task_set] = closure;

  // A previous task set may have aborted (fetch failure) with tasks still
  // in flight; those executors dropped the stale work, so treat everyone
  // as idle — their queued messages execute in order anyway.
  for (ExecutorInfo& info : app_.executors) info.busy = false;

  net::Endpoint& ep = app_.control->endpoint(app_.driver_endpoint);
  std::deque<int> pending(partitions.begin(), partitions.end());
  std::map<int, int> running;  // partition -> executor
  std::set<int> done;
  std::map<int, int> attempts;

  // Locality preferences, computed once.
  std::map<int, std::vector<int>> prefs;
  for (int p : partitions) prefs[p] = PreferredExecutors(locality_rdd, p);

  auto pick_task = [&](const ExecutorInfo& info) -> std::optional<int> {
    if (pending.empty()) return std::nullopt;
    // Executor-local (cached) first, then node-local, then anything.
    for (int pass = 0; pass < 3; ++pass) {
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        const std::vector<int>& pref = prefs[*it];
        bool match = false;
        if (pass == 0) {
          match = std::find(pref.begin(), pref.end(), info.id) != pref.end();
        } else if (pass == 1) {
          for (int e : pref) {
            if (app_.executors[e].node == info.node) {
              match = true;
              break;
            }
          }
        } else {
          match = true;
        }
        if (match) {
          const int p = *it;
          pending.erase(it);
          return p;
        }
      }
    }
    return std::nullopt;
  };

  auto finish = [&](Status status, bool fetch_failed) {
    app_.closures.erase(task_set);
    outcome.status = std::move(status);
    outcome.fetch_failed = fetch_failed;
    return outcome;
  };

  while (done.size() < partitions.size()) {
    // Assign work to idle executors.
    for (ExecutorInfo& info : app_.executors) {
      if (!info.alive || info.busy || pending.empty()) continue;
      auto task = pick_task(info);
      if (!task.has_value()) break;
      const int p = *task;
      if (++attempts[p] > 4) {
        return finish(Internal("task for partition " + std::to_string(p) +
                               " failed 4 times"),
                      false);
      }
      ctx_.Compute(app_.options.driver_per_task);
      const Bytes ship = app_.options.task_message_bytes +
                         app_.Modeled(locality_rdd.ExtraTaskShipBytes(p));
      ep.SendAsync(ctx_, info.id, kTagTask, EncodeTask(task_set, p), ship);
      info.busy = true;
      running[p] = info.id;
      ++app_.stats.tasks_launched;
    }

    auto msg = ep.RecvWithTimeout(ctx_, ctx_.now() + app_.options.heartbeat);
    if (!msg.has_value()) {
      SweepExecutors();
      bool requeued = false;
      for (auto it = running.begin(); it != running.end();) {
        if (!app_.executors[it->second].alive) {
          pending.push_back(it->first);
          ++app_.stats.task_retries;
          app_.obs->Add(app_.obs_tags.recovery_task_retries);
          it = running.erase(it);
          requeued = true;
        } else {
          ++it;
        }
      }
      if (!requeued) {
        bool any_alive = false;
        for (const ExecutorInfo& info : app_.executors) {
          any_alive = any_alive || info.alive;
        }
        if (!any_alive) {
          return finish(Unavailable("all Spark executors lost"), false);
        }
      }
      continue;
    }

    const TaskHeader header = DecodeHeader(msg->payload);
    const int executor = msg->src;
    if (executor >= 0 && executor < static_cast<int>(app_.executors.size())) {
      app_.executors[executor].busy = false;
    }
    if (header.task_set != task_set) continue;  // stale completion
    if (done.count(header.partition) > 0) continue;

    if (msg->tag == kTagTaskDone) {
      running.erase(header.partition);
      done.insert(header.partition);
      if (results != nullptr) {
        // Zero-copy: the result is the message payload past the header.
        (*results)[header.partition] = msg->payload.Slice(kTaskHeaderBytes);
      }
    } else if (msg->tag == kTagTaskFail) {
      ++app_.stats.fetch_failures;
      app_.obs->Add(app_.obs_tags.recovery_fetch_failures);
      running.erase(header.partition);
      SweepExecutors();
      return finish(OkStatus(), /*fetch_failed=*/true);
    }
  }
  return finish(OkStatus(), false);
}

Result<std::vector<buf::Bytes>> SparkContext::RunJob(
    std::shared_ptr<RddBase> final_rdd,
    std::function<buf::Bytes(TaskRt&, int)> result_closure) {
  sim::Scope job_scope(ctx_, app_.obs_tags.job);
  ctx_.Compute(app_.options.driver_per_job);
  ++app_.stats.jobs;

  std::vector<std::shared_ptr<ShuffleDepBase>> deps;
  {
    std::set<int> seen_rdds;
    std::set<int> seen_shuffles;
    CollectShuffleDeps(*final_rdd, seen_rdds, seen_shuffles, deps);
  }
  if (app_.verify != nullptr && app_.verify->active()) {
    std::vector<verify::LineageEdge> edges;
    std::set<int> seen;
    CollectLineage(*final_rdd, seen, edges);
    app_.verify->OnSparkLineage(edges);
  }

  std::map<int, buf::Bytes> results;
  std::set<int> result_done;
  const int max_rounds = 8 * static_cast<int>(deps.size() + 2);
  for (int round = 0; round < max_rounds; ++round) {
    // First incomplete shuffle stage runs next (deps are parents-first).
    ShuffleDepBase* next = nullptr;
    for (const auto& dep : deps) {
      if (!app_.shuffle_store.Complete(dep->shuffle_id())) {
        next = dep.get();
        break;
      }
    }
    if (next != nullptr) {
      auto dep_ptr = *std::find_if(deps.begin(), deps.end(),
                                   [&](const auto& d) {
                                     return d.get() == next;
                                   });
      const std::vector<int> missing =
          app_.shuffle_store.MissingMaps(next->shuffle_id());
      auto map_closure = [dep_ptr](TaskRt& rt, int p) -> buf::Bytes {
        auto buckets = dep_ptr->RunMapTask(rt, p);
        rt.CommitShuffleOutput(dep_ptr->shuffle_id(), p, std::move(buckets));
        return serde::EncodeToBytes<std::uint8_t>(1);
      };
      TaskSetOutcome outcome =
          RunTaskSet(next->parent(), missing, map_closure, nullptr);
      if (!outcome.status.ok()) return outcome.status;
      continue;  // fetch_failed or success: either way re-derive readiness
    }

    // All shuffles complete: run missing result partitions.
    std::vector<int> missing_results;
    for (int p = 0; p < final_rdd->num_partitions(); ++p) {
      if (result_done.count(p) == 0) missing_results.push_back(p);
    }
    std::map<int, buf::Bytes> partials;
    TaskSetOutcome outcome =
        RunTaskSet(*final_rdd, missing_results, result_closure, &partials);
    if (!outcome.status.ok()) return outcome.status;
    for (auto& [p, buffer] : partials) {
      results[p] = std::move(buffer);
      result_done.insert(p);
    }
    if (outcome.fetch_failed) continue;
    if (static_cast<int>(result_done.size()) == final_rdd->num_partitions()) {
      std::vector<buf::Bytes> ordered;
      ordered.reserve(results.size());
      for (auto& [p, buffer] : results) ordered.push_back(std::move(buffer));
      return ordered;
    }
  }
  return Internal("job exceeded stage retry budget");
}

// ===========================================================================
// MiniSpark deployment
// ===========================================================================

MiniSpark::MiniSpark(cluster::Cluster& cluster, dfs::MiniDfs* dfs,
                     SparkOptions options)
    : cluster_(cluster), app_(std::make_shared<AppState>()) {
  app_->options = std::move(options);
  app_->cluster = &cluster;
  app_->dfs = dfs;
  app_->obs = &cluster.engine().obs();
  app_->verify = &cluster.engine().verify();
  app_->obs_tags.job = app_->obs->Intern("spark.job");
  app_->obs_tags.stage = app_->obs->Intern("spark.stage");
  app_->obs_tags.task = app_->obs->Intern("spark.task");
  app_->obs_tags.time_compute = app_->obs->Intern("spark.time.compute");
  app_->obs_tags.time_shuffle_net = app_->obs->Intern("spark.time.shuffle_net");
  app_->obs_tags.time_shuffle_disk =
      app_->obs->Intern("spark.time.shuffle_disk");
  app_->obs_tags.time_persist_io = app_->obs->Intern("spark.time.persist_io");
  app_->obs_tags.tasks = app_->obs->Intern("spark.tasks");
  app_->obs_tags.bytes_socket = app_->obs->Intern("spark.shuffle.bytes.socket");
  app_->obs_tags.bytes_rdma = app_->obs->Intern("spark.shuffle.bytes.rdma");
  app_->obs_tags.bytes_local = app_->obs->Intern("spark.shuffle.bytes.local");
  app_->obs_tags.bytes_fetched = app_->obs->Intern("shuffle.bytes_fetched");
  app_->obs_tags.recovery_task_retries =
      app_->obs->Intern("recovery.spark.task_retries");
  app_->obs_tags.recovery_fetch_failures =
      app_->obs->Intern("recovery.spark.fetch_failures");
  app_->obs_tags.recovery_executors_reacquired =
      app_->obs->Intern("recovery.spark.executors_reacquired");
  app_->control = std::make_unique<net::Network>(
      cluster.engine(), cluster.fabric(app_->options.control_transport));
  app_->shuffle_fabric =
      cluster.fabric(app_->options.rdma_shuffle
                         ? app_->options.rdma_transport
                         : app_->options.shuffle_transport);
  const Bytes per_executor_memory = static_cast<Bytes>(
      static_cast<double>(cluster.spec().node.memory) *
      app_->options.storage_memory_fraction /
      static_cast<double>(app_->options.executors_per_node));
  app_->block_store = std::make_unique<BlockStore>(per_executor_memory);

  const std::vector<int>& placement = app_->options.executor_nodes;
  const int executors =
      placement.empty() ? cluster.nodes() * app_->options.executors_per_node
                        : static_cast<int>(placement.size());
  // The driver endpoint sits past the growth headroom so AddExecutor can
  // hand out fresh executor ids without colliding with it.
  app_->driver_endpoint = std::max(executors, app_->options.max_executors);
  app_->executors.resize(static_cast<std::size_t>(executors));
  for (int e = 0; e < executors; ++e) {
    const int node =
        placement.empty() ? e / app_->options.executors_per_node : placement[e];
    PSTK_CHECK_MSG(node >= 0 && node < cluster.nodes(),
                   "executor node " << node << " out of range");
    app_->executors[e] = ExecutorInfo{e, node, sim::kNoPid, false, false};
    app_->control->CreateEndpoint(e, node);
  }
  app_->control->CreateEndpoint(app_->driver_endpoint,
                                app_->options.driver_node);
}

void MiniSpark::Submit(DriverBody body,
                       std::function<void(Result<AppResult>)> on_done) {
  // Executor processes.
  for (ExecutorInfo& info : app_->executors) {
    info.pid = cluster_.engine().Spawn(
        app_->options.name + "-exec-" + std::to_string(info.id),
        [this, id = info.id](sim::Context& ctx) { ExecutorMain(ctx, id); },
        info.node);
    info.alive = true;
  }
  if (app_->options.reacquire_executors) {
    app_->respawn_executor = [this](ExecutorInfo& info) {
      info.pid = cluster_.engine().Spawn(
          app_->options.name + "-exec-" + std::to_string(info.id),
          [this, id = info.id](sim::Context& ctx) { ExecutorMain(ctx, id); },
          info.node);
    };
  }
  // Driver process (client mode).
  cluster_.engine().Spawn(
      app_->options.name + "-driver",
      [this, body = std::move(body),
       on_done = std::move(on_done)](sim::Context& ctx) {
        DriverMain(ctx, body, on_done);
      },
      app_->options.driver_node);
}

int MiniSpark::AddExecutor(int node) {
  const int id = static_cast<int>(app_->executors.size());
  PSTK_CHECK_MSG(id < app_->driver_endpoint,
                 "executor growth past max_executors=" << app_->driver_endpoint);
  app_->executors.push_back(ExecutorInfo{id, node, sim::kNoPid, false, false});
  app_->control->CreateEndpoint(id, node);
  ExecutorInfo& info = app_->executors.back();
  info.pid = cluster_.engine().Spawn(
      app_->options.name + "-exec-" + std::to_string(id),
      [this, id](sim::Context& ctx) { ExecutorMain(ctx, id); }, node);
  info.alive = true;
  return id;
}

void MiniSpark::RemoveExecutor(int executor_id) {
  ExecutorInfo& info =
      app_->executors[static_cast<std::size_t>(executor_id)];
  if (info.pid != sim::kNoPid && cluster_.engine().IsAlive(info.pid)) {
    // The driver's next SweepExecutors drops its shuffle/cache state and
    // lineage recomputes anything lost — the elastic shrink path.
    cluster_.engine().KillNow(info.pid);
  }
}

Result<AppResult> MiniSpark::RunApp(DriverBody body) {
  std::optional<Result<AppResult>> outcome;
  Submit(std::move(body),
         [&outcome](Result<AppResult> result) { outcome = std::move(result); });
  const sim::RunResult run = cluster_.engine().Run();
  if (outcome.has_value()) return *std::move(outcome);
  if (!run.status.ok()) return run.status;
  return Internal("Spark app never completed");
}

void MiniSpark::DriverMain(sim::Context& ctx, DriverBody body,
                           std::function<void(Result<AppResult>)> on_done) {
  const SimTime start = ctx.now();
  // spark-submit, driver JVM, executor registration.
  ctx.SleepUntil(start + app_->options.app_startup);

  SparkContext sc(*app_, ctx);
  body(sc);

  // Tear the executors down.
  app_->app_done = true;
  net::Endpoint& ep = app_->control->endpoint(app_->driver_endpoint);
  for (const ExecutorInfo& info : app_->executors) {
    if (app_->ExecutorAlive(info.id)) {
      ep.SendAsync(ctx, info.id, kTagExit, buf::Bytes{});
    }
  }

  AppResult result;
  result.elapsed = ctx.now() - start;
  result.stats = app_->stats;
  on_done(result);
}

void MiniSpark::ExecutorMain(sim::Context& ctx, int executor_id) {
  net::Endpoint& ep = app_->control->endpoint(executor_id);
  const int node = app_->executors[static_cast<std::size_t>(executor_id)].node;
  for (;;) {
    // Wake periodically so app teardown can't strand us.
    auto msg = ep.RecvWithTimeout(ctx, ctx.now() + 30.0);
    if (!msg.has_value()) {
      if (app_->app_done) return;
      continue;
    }
    if (msg->tag == kTagExit) return;
    PSTK_CHECK(msg->tag == kTagTask);
    const TaskHeader header = DecodeHeader(msg->payload);

    auto closure = app_->closures.find(header.task_set);
    if (closure == app_->closures.end()) continue;  // stale task

    ctx.Compute(app_->options.executor_per_task);
    app_->obs->Add(app_->obs_tags.tasks);
    sim::Scope task_scope(ctx, app_->obs_tags.task);
    TaskRt rt(*app_, ctx, executor_id, node);
    try {
      buf::Bytes result = closure->second(rt, header.partition);
      const Bytes modeled = app_->Modeled(result.size()) + kKiB;
      ep.SendAsync(ctx, app_->driver_endpoint, kTagTaskDone,
                   EncodeTaskDone(header.task_set, header.partition,
                                  std::move(result)),
                   modeled);
    } catch (const FetchFailed& failed) {
      ep.SendAsync(ctx, app_->driver_endpoint, kTagTaskFail,
                   EncodeTaskFail(header.task_set, header.partition,
                                  failed.shuffle_id));
    }
  }
}

}  // namespace pstk::spark
