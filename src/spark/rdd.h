// MiniSpark's RDD layer: the lazy, lineage-tracked dataset abstraction
// (§II-E of the paper). Transformations build a DAG of plan nodes; nothing
// executes until an action runs a job through the driver's DAG scheduler.
//
// Structural fidelity:
//  * narrow vs shuffle dependencies; stages split at shuffles;
//  * hash-partitioner awareness: joining two datasets with the same
//    partitioner is narrow (no shuffle) — the heart of the tuned
//    BigDataBench PageRank (paper Fig 5/6);
//  * persist()/StorageLevel with lineage-based recovery: lost partitions
//    are recomputed from their dependencies, not replicated;
//  * map-side combine for reduceByKey.
//
// All element types must be serde-codable (shuffle, collect, and cache
// accounting serialize real bytes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "buf/bytes.h"
#include "common/check.h"
#include "serde/serde.h"
#include "spark/runtime.h"
#include "spark/task_rt.h"

namespace pstk::spark {

class SparkContext;

// ===========================================================================
// Plan-node base classes
// ===========================================================================

class ShuffleDepBase;

class RddBase {
 public:
  RddBase(int id, int num_partitions)
      : id_(id), num_partitions_(num_partitions) {
    PSTK_CHECK_MSG(num_partitions >= 1, "RDD needs at least one partition");
  }
  virtual ~RddBase() = default;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int num_partitions() const { return num_partitions_; }

  StorageLevel storage_level = StorageLevel::kNone;
  /// Hash-partitioner marker: set means "hash(key) % value == partition".
  std::optional<int> partitioner;
  std::vector<std::shared_ptr<RddBase>> narrow_parents;
  std::vector<std::shared_ptr<ShuffleDepBase>> shuffle_deps;

  /// Compute partition `p` (no caching — TaskRt::Evaluate handles that).
  virtual PartitionHandle Compute(TaskRt& rt, int p) = 0;
  /// Serialized size of a materialized partition (cache accounting).
  [[nodiscard]] virtual Bytes SizeOf(const PartitionHandle& data) const = 0;
  [[nodiscard]] virtual std::uint64_t CountOf(
      const PartitionHandle& data) const = 0;
  /// Input-source locality (node ids) for partition `p`.
  [[nodiscard]] virtual std::vector<int> PreferredNodes(int p) const {
    (void)p;
    return {};
  }
  /// Extra bytes shipped inside the task closure (parallelize data).
  [[nodiscard]] virtual Bytes ExtraTaskShipBytes(int p) const {
    (void)p;
    return 0;
  }

 private:
  int id_;
  int num_partitions_;
};

/// A shuffle dependency: how a child reshuffles `parent`. The map-side
/// work (bucketing + optional combine) is typed and lives in the impl.
class ShuffleDepBase {
 public:
  ShuffleDepBase(int shuffle_id, std::shared_ptr<RddBase> parent,
                 int num_reduces)
      : shuffle_id_(shuffle_id),
        parent_(std::move(parent)),
        num_reduces_(num_reduces) {}
  virtual ~ShuffleDepBase() = default;

  [[nodiscard]] int shuffle_id() const { return shuffle_id_; }
  [[nodiscard]] RddBase& parent() { return *parent_; }
  [[nodiscard]] const std::shared_ptr<RddBase>& parent_ptr() const {
    return parent_;
  }
  [[nodiscard]] int num_reduces() const { return num_reduces_; }

  /// Map task: evaluate parent partition `p` and return one serialized
  /// bucket per reduce partition.
  virtual std::vector<buf::Bytes> RunMapTask(TaskRt& rt, int p) = 0;

 private:
  int shuffle_id_;
  std::shared_ptr<RddBase> parent_;
  int num_reduces_;
};

template <typename T>
class TypedRdd : public RddBase {
 public:
  using RddBase::RddBase;
  using Element = T;

  virtual std::shared_ptr<std::vector<T>> ComputeTyped(TaskRt& rt, int p) = 0;

  PartitionHandle Compute(TaskRt& rt, int p) final {
    return ComputeTyped(rt, p);
  }
  [[nodiscard]] Bytes SizeOf(const PartitionHandle& data) const final {
    const auto& vec = *std::static_pointer_cast<std::vector<T>>(data);
    return serde::EncodedSize(vec);
  }
  [[nodiscard]] std::uint64_t CountOf(const PartitionHandle& data) const final {
    return std::static_pointer_cast<std::vector<T>>(data)->size();
  }
};

// ===========================================================================
// Concrete nodes
// ===========================================================================

template <typename T>
class ParallelizeNode final : public TypedRdd<T> {
 public:
  ParallelizeNode(int id, std::vector<T> data, int slices)
      : TypedRdd<T>(id, slices), data_(std::move(data)) {
    ship_bytes_.assign(static_cast<std::size_t>(slices), 0);
  }

  std::shared_ptr<std::vector<T>> ComputeTyped(TaskRt& rt, int p) override {
    auto [lo, hi] = SliceRange(p);
    auto out = std::make_shared<std::vector<T>>(data_.begin() + lo,
                                                data_.begin() + hi);
    rt.ChargeRecords(out->size(), 0);
    return out;
  }

  [[nodiscard]] Bytes ExtraTaskShipBytes(int p) const override {
    // parallelize() ships the slice data inside the task binary.
    auto& cached = ship_bytes_[static_cast<std::size_t>(p)];
    if (cached == 0) {
      auto [lo, hi] = const_cast<ParallelizeNode*>(this)->SliceRange(p);
      std::vector<T> slice(data_.begin() + lo, data_.begin() + hi);
      cached = serde::EncodedSize(slice);
    }
    return cached;
  }

 private:
  std::pair<std::ptrdiff_t, std::ptrdiff_t> SliceRange(int p) {
    const auto n = static_cast<std::int64_t>(data_.size());
    const auto k = static_cast<std::int64_t>(this->num_partitions());
    const std::int64_t lo = n * p / k;
    const std::int64_t hi = n * (p + 1) / k;
    return {static_cast<std::ptrdiff_t>(lo), static_cast<std::ptrdiff_t>(hi)};
  }
  std::vector<T> data_;
  mutable std::vector<Bytes> ship_bytes_;
};

class TextFileDfsNode final : public TypedRdd<std::string> {
 public:
  TextFileDfsNode(int id, std::string path,
                  std::vector<std::vector<int>> block_locations)
      : TypedRdd<std::string>(id,
                              static_cast<int>(block_locations.size())),
        path_(std::move(path)),
        locations_(std::move(block_locations)) {}

  std::shared_ptr<std::vector<std::string>> ComputeTyped(TaskRt& rt,
                                                         int p) override {
    auto block = rt.ReadDfsBlock(path_, static_cast<std::size_t>(p));
    PSTK_CHECK_MSG(block.ok(), "textFile read failed: "
                                   << block.status().ToString());
    auto lines = std::make_shared<std::vector<std::string>>();
    SplitLines(block.value().view(), *lines);
    rt.ChargeRecords(lines->size(), block.value().size());
    return lines;
  }

  [[nodiscard]] std::vector<int> PreferredNodes(int p) const override {
    return locations_[static_cast<std::size_t>(p)];
  }

  static void SplitLines(std::string_view text,
                         std::vector<std::string>& out) {
    std::size_t pos = 0;
    while (pos < text.size()) {
      auto nl = text.find('\n', pos);
      if (nl == std::string_view::npos) nl = text.size();
      if (nl > pos) out.emplace_back(text.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }

 private:
  std::string path_;
  std::vector<std::vector<int>> locations_;
};

/// textFile() over a file replicated on every node's local scratch
/// (Table II's "Spark on local filesystem" configuration).
class TextFileLocalNode final : public TypedRdd<std::string> {
 public:
  TextFileLocalNode(int id, std::string path, Bytes actual_size,
                    Bytes actual_split, int num_splits)
      : TypedRdd<std::string>(id, num_splits),
        path_(std::move(path)),
        actual_size_(actual_size),
        actual_split_(actual_split) {}

  std::shared_ptr<std::vector<std::string>> ComputeTyped(TaskRt& rt,
                                                         int p) override {
    const Bytes lo = actual_split_ * static_cast<Bytes>(p);
    const Bytes hi =
        std::min(actual_size_, actual_split_ * static_cast<Bytes>(p + 1));
    // Hadoop LineRecordReader semantics, boundary-exact: this split owns
    // exactly the lines starting inside [lo, hi).
    auto data = rt.ReadLocalLines(path_, lo, hi - lo);
    PSTK_CHECK_MSG(data.ok(),
                   "local textFile read failed: " << data.status().ToString());
    auto lines = std::make_shared<std::vector<std::string>>();
    TextFileDfsNode::SplitLines(data.value().view(), *lines);
    rt.ChargeRecords(lines->size(), data.value().size());
    return lines;
  }

 private:
  std::string path_;
  Bytes actual_size_;
  Bytes actual_split_;
};

template <typename T, typename U>
class MapNode final : public TypedRdd<U> {
 public:
  MapNode(int id, std::shared_ptr<TypedRdd<T>> parent,
          std::function<U(const T&)> fn, bool preserves_partitioning)
      : TypedRdd<U>(id, parent->num_partitions()),
        parent_(parent),
        fn_(std::move(fn)) {
    this->narrow_parents.push_back(parent);
    if (preserves_partitioning) this->partitioner = parent->partitioner;
  }

  std::shared_ptr<std::vector<U>> ComputeTyped(TaskRt& rt, int p) override {
    auto in = rt.EvaluateTyped<T>(*parent_, p);
    auto out = std::make_shared<std::vector<U>>();
    out->reserve(in->size());
    for (const T& item : *in) out->push_back(fn_(item));
    rt.ChargeRecords(in->size(), 0);
    return out;
  }

 private:
  std::shared_ptr<TypedRdd<T>> parent_;
  std::function<U(const T&)> fn_;
};

template <typename T, typename U>
class FlatMapNode final : public TypedRdd<U> {
 public:
  FlatMapNode(int id, std::shared_ptr<TypedRdd<T>> parent,
              std::function<std::vector<U>(const T&)> fn)
      : TypedRdd<U>(id, parent->num_partitions()),
        parent_(parent),
        fn_(std::move(fn)) {
    this->narrow_parents.push_back(parent);
  }

  std::shared_ptr<std::vector<U>> ComputeTyped(TaskRt& rt, int p) override {
    auto in = rt.EvaluateTyped<T>(*parent_, p);
    auto out = std::make_shared<std::vector<U>>();
    for (const T& item : *in) {
      for (U& produced : fn_(item)) out->push_back(std::move(produced));
    }
    rt.ChargeRecords(in->size() + out->size(), 0);
    return out;
  }

 private:
  std::shared_ptr<TypedRdd<T>> parent_;
  std::function<std::vector<U>(const T&)> fn_;
};

template <typename T>
class FilterNode final : public TypedRdd<T> {
 public:
  FilterNode(int id, std::shared_ptr<TypedRdd<T>> parent,
             std::function<bool(const T&)> pred)
      : TypedRdd<T>(id, parent->num_partitions()),
        parent_(parent),
        pred_(std::move(pred)) {
    this->narrow_parents.push_back(parent);
    this->partitioner = parent->partitioner;  // filter keeps partitioning
  }

  std::shared_ptr<std::vector<T>> ComputeTyped(TaskRt& rt, int p) override {
    auto in = rt.EvaluateTyped<T>(*parent_, p);
    auto out = std::make_shared<std::vector<T>>();
    for (const T& item : *in) {
      if (pred_(item)) out->push_back(item);
    }
    rt.ChargeRecords(in->size(), 0);
    return out;
  }

 private:
  std::shared_ptr<TypedRdd<T>> parent_;
  std::function<bool(const T&)> pred_;
};

/// union(): all partitions of both parents, in order (narrow, no shuffle).
template <typename T>
class UnionNode final : public TypedRdd<T> {
 public:
  UnionNode(int id, std::shared_ptr<TypedRdd<T>> left,
            std::shared_ptr<TypedRdd<T>> right)
      : TypedRdd<T>(id, left->num_partitions() + right->num_partitions()),
        left_(left),
        right_(right) {
    this->narrow_parents.push_back(left);
    this->narrow_parents.push_back(right);
  }

  std::shared_ptr<std::vector<T>> ComputeTyped(TaskRt& rt, int p) override {
    if (p < left_->num_partitions()) {
      return rt.EvaluateTyped<T>(*left_, p);
    }
    return rt.EvaluateTyped<T>(*right_, p - left_->num_partitions());
  }

  [[nodiscard]] std::vector<int> PreferredNodes(int p) const override {
    if (p < left_->num_partitions()) return left_->PreferredNodes(p);
    return right_->PreferredNodes(p - left_->num_partitions());
  }

 private:
  std::shared_ptr<TypedRdd<T>> left_;
  std::shared_ptr<TypedRdd<T>> right_;
};

/// Map-side of a shuffle over pair<K, V>, producing combined values C.
/// With `aggregate` false, C must equal V and values pass through raw.
template <typename K, typename V, typename C>
class ShuffleDepImpl final : public ShuffleDepBase {
 public:
  using Parent = TypedRdd<std::pair<K, V>>;
  ShuffleDepImpl(int shuffle_id, std::shared_ptr<Parent> parent,
                 int num_reduces, bool aggregate,
                 std::function<C(const V&)> create,
                 std::function<C(C, const V&)> merge_value)
      : ShuffleDepBase(shuffle_id, parent, num_reduces),
        typed_parent_(std::move(parent)),
        aggregate_(aggregate),
        create_(std::move(create)),
        merge_value_(std::move(merge_value)) {}

  std::vector<buf::Bytes> RunMapTask(TaskRt& rt, int p) override {
    auto in = rt.EvaluateTyped<std::pair<K, V>>(*typed_parent_, p);
    const int R = num_reduces();
    std::vector<buf::Bytes> buckets;
    buckets.reserve(static_cast<std::size_t>(R));
    Bytes total = 0;
    if (aggregate_) {
      // Map-side combine: aggregate into a single hash map first (one
      // insert per record), then partition the much smaller combined set.
      // Hashing each key once beats per-bucket maps: the old layout paid a
      // partition hash plus a map hash per input record.
      std::unordered_map<K, C> combined;
      combined.reserve(in->size());
      for (const auto& [key, value] : *in) {
        auto it = combined.find(key);
        if (it == combined.end()) {
          combined.emplace(key, create_(value));
        } else {
          it->second = merge_value_(std::move(it->second), value);
        }
      }
      std::vector<std::vector<std::pair<K, C>>> lists(
          static_cast<std::size_t>(R));
      for (auto& [key, combiner] : combined) {
        lists[BucketOf(key, R)].emplace_back(key, std::move(combiner));
      }
      for (auto& list : lists) {
        buckets.push_back(serde::EncodeToBytes(list));
        total += buckets.back().size();
      }
      rt.ChargeSerde(in->size(), total);
    } else {
      std::vector<std::vector<std::pair<K, C>>> lists(
          static_cast<std::size_t>(R));
      for (const auto& [key, value] : *in) {
        lists[BucketOf(key, R)].emplace_back(key, create_(value));
      }
      for (auto& list : lists) {
        buckets.push_back(serde::EncodeToBytes(list));
        total += buckets.back().size();
      }
      rt.ChargeSerde(in->size(), total);
    }
    return buckets;
  }

  static std::size_t BucketOf(const K& key, int R) {
    return std::hash<K>{}(key) % static_cast<std::size_t>(R);
  }

 private:
  std::shared_ptr<Parent> typed_parent_;
  bool aggregate_;
  std::function<C(const V&)> create_;
  std::function<C(C, const V&)> merge_value_;
};

/// Reduce-side of a shuffle: fetch buckets and merge into pair<K, C>.
template <typename K, typename C>
class ShuffledNode final : public TypedRdd<std::pair<K, C>> {
 public:
  ShuffledNode(int id, std::shared_ptr<ShuffleDepBase> dep, bool aggregate,
               std::function<C(C, C)> merge_combiners)
      : TypedRdd<std::pair<K, C>>(id, dep->num_reduces()),
        aggregate_(aggregate),
        merge_combiners_(std::move(merge_combiners)) {
    this->shuffle_deps.push_back(std::move(dep));
    this->partitioner = this->num_partitions();
  }

  std::shared_ptr<std::vector<std::pair<K, C>>> ComputeTyped(
      TaskRt& rt, int p) override {
    const auto buffers =
        rt.FetchShuffle(this->shuffle_deps[0]->shuffle_id(), p);
    auto out = std::make_shared<std::vector<std::pair<K, C>>>();
    Bytes fetched_bytes = 0;
    for (const buf::Bytes& buffer : buffers) fetched_bytes += buffer.size();
    if (aggregate_) {
      std::unordered_map<K, C> merged;
      std::uint64_t records = 0;
      for (const buf::Bytes& buffer : buffers) {
        auto kvs =
            serde::DecodeFromBytes<std::vector<std::pair<K, C>>>(buffer);
        PSTK_CHECK_MSG(kvs.ok(), "corrupt shuffle bucket");
        records += kvs.value().size();
        for (auto& [key, combiner] : kvs.value()) {
          auto it = merged.find(key);
          if (it == merged.end()) {
            merged.emplace(std::move(key), std::move(combiner));
          } else {
            it->second =
                merge_combiners_(std::move(it->second), std::move(combiner));
          }
        }
      }
      out->assign(merged.begin(), merged.end());
      rt.ChargeSerde(records, fetched_bytes);
    } else {
      std::uint64_t records = 0;
      for (const buf::Bytes& buffer : buffers) {
        auto kvs =
            serde::DecodeFromBytes<std::vector<std::pair<K, C>>>(buffer);
        PSTK_CHECK_MSG(kvs.ok(), "corrupt shuffle bucket");
        records += kvs.value().size();
        for (auto& kv : kvs.value()) out->push_back(std::move(kv));
      }
      rt.ChargeSerde(records, fetched_bytes);
    }
    return out;
  }

 private:
  bool aggregate_;
  std::function<C(C, C)> merge_combiners_;
};

/// Narrow (co-partitioned) inner join: both parents share the same hash
/// partitioner, so partition p joins with partition p — no shuffle.
template <typename K, typename V, typename W>
class NarrowJoinNode final : public TypedRdd<std::pair<K, std::pair<V, W>>> {
 public:
  NarrowJoinNode(int id, std::shared_ptr<TypedRdd<std::pair<K, V>>> left,
                 std::shared_ptr<TypedRdd<std::pair<K, W>>> right)
      : TypedRdd<std::pair<K, std::pair<V, W>>>(id, left->num_partitions()),
        left_(left),
        right_(right) {
    PSTK_CHECK(left->num_partitions() == right->num_partitions());
    this->narrow_parents.push_back(left);
    this->narrow_parents.push_back(right);
    this->partitioner = left->partitioner;
  }

  std::shared_ptr<std::vector<std::pair<K, std::pair<V, W>>>> ComputeTyped(
      TaskRt& rt, int p) override {
    auto lhs = rt.EvaluateTyped<std::pair<K, V>>(*left_, p);
    auto rhs = rt.EvaluateTyped<std::pair<K, W>>(*right_, p);
    std::unordered_map<K, std::vector<W>> table;
    for (const auto& [key, w] : *rhs) table[key].push_back(w);
    auto out =
        std::make_shared<std::vector<std::pair<K, std::pair<V, W>>>>();
    for (const auto& [key, v] : *lhs) {
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const W& w : it->second) out->emplace_back(key, std::pair{v, w});
    }
    rt.ChargeRecords(lhs->size() + rhs->size() + out->size(), 0);
    return out;
  }

 private:
  std::shared_ptr<TypedRdd<std::pair<K, V>>> left_;
  std::shared_ptr<TypedRdd<std::pair<K, W>>> right_;
};

/// Shuffled inner join: both sides reshuffled by key hash.
template <typename K, typename V, typename W>
class ShuffledJoinNode final
    : public TypedRdd<std::pair<K, std::pair<V, W>>> {
 public:
  ShuffledJoinNode(int id, std::shared_ptr<ShuffleDepBase> left_dep,
                   std::shared_ptr<ShuffleDepBase> right_dep)
      : TypedRdd<std::pair<K, std::pair<V, W>>>(id, left_dep->num_reduces()),
        left_id_(left_dep->shuffle_id()),
        right_id_(right_dep->shuffle_id()) {
    this->shuffle_deps.push_back(std::move(left_dep));
    this->shuffle_deps.push_back(std::move(right_dep));
    this->partitioner = this->num_partitions();
  }

  std::shared_ptr<std::vector<std::pair<K, std::pair<V, W>>>> ComputeTyped(
      TaskRt& rt, int p) override {
    std::vector<std::pair<K, V>> lhs;
    std::vector<std::pair<K, W>> rhs;
    std::uint64_t records = 0;
    for (const buf::Bytes& buffer : rt.FetchShuffle(left_id_, p)) {
      auto kvs = serde::DecodeFromBytes<std::vector<std::pair<K, V>>>(buffer);
      PSTK_CHECK_MSG(kvs.ok(), "corrupt join bucket");
      for (auto& kv : kvs.value()) lhs.push_back(std::move(kv));
    }
    for (const buf::Bytes& buffer : rt.FetchShuffle(right_id_, p)) {
      auto kvs = serde::DecodeFromBytes<std::vector<std::pair<K, W>>>(buffer);
      PSTK_CHECK_MSG(kvs.ok(), "corrupt join bucket");
      for (auto& kv : kvs.value()) rhs.push_back(std::move(kv));
    }
    records += lhs.size() + rhs.size();
    std::unordered_map<K, std::vector<W>> table;
    for (auto& [key, w] : rhs) table[key].push_back(std::move(w));
    auto out =
        std::make_shared<std::vector<std::pair<K, std::pair<V, W>>>>();
    for (const auto& [key, v] : lhs) {
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const W& w : it->second) out->emplace_back(key, std::pair{v, w});
    }
    rt.ChargeRecords(records + out->size(), 0);
    return out;
  }

 private:
  int left_id_;
  int right_id_;
};

}  // namespace pstk::spark
