// MiniDFS: an HDFS-like distributed filesystem on the simulated cluster.
//
// Faithful structural properties (the ones the paper's results depend on):
//  * files split into fixed-size blocks (128 MB modeled by default);
//  * blocks replicated across datanodes (default factor 3), first replica
//    on the writer's node, pipeline replication to the rest;
//  * block-location metadata for locality-aware scheduling (Spark/MR ask
//    "which nodes hold block k?");
//  * datanode failure tolerated: reads fall back to surviving replicas and
//    a background re-replication restores the factor — the job never sees
//    the fault (paper §V-B2, §VI-D);
//  * all DFS traffic runs over the socket transport (Ethernet/IPoIB), never
//    RDMA, matching stock Hadoop.
//
// Simplifications (documented in DESIGN.md): the namenode is passive
// metadata with a constant RPC latency; datanodes are passive disk+NIC
// resources rather than separate processes; blocks are cut at line
// boundaries so every block holds whole records.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "buf/bytes.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "sim/engine.h"

namespace pstk::dfs {

using BlockId = std::uint64_t;

struct DfsOptions {
  Bytes block_size = 128 * kMiB;  // modeled bytes per block
  int replication = 3;
  SimTime namenode_rpc_latency = Micros(300);
  /// Transport for all datanode traffic (stock Hadoop: sockets).
  net::TransportParams transport = net::TransportParams::IPoIB();
  /// Client-side CPU per byte read: the DataNode streaming protocol plus
  /// checksum verification (short-circuit local reads are off by default
  /// in Hadoop 2.6) — the "additional layer for data access" behind the
  /// paper's ~25% HDFS-vs-local overhead (Table II).
  SimTime client_cpu_per_byte = 1.0 / 100e6;
};

struct BlockInfo {
  BlockId id = 0;
  Bytes actual_size = 0;
  Bytes modeled_size = 0;
  std::vector<int> replicas;  // node ids holding the block
};

struct FileInfo {
  std::string path;
  Bytes actual_size = 0;
  Bytes modeled_size = 0;
  std::vector<BlockId> blocks;
};

class MiniDfs {
 public:
  MiniDfs(cluster::Cluster& cluster, DfsOptions options = {});

  /// Write a whole file from a client on `writer_node`, charging pipeline
  /// replication costs. Content is actual bytes (modeled = actual / scale);
  /// the file is stored as one immutable chunk and blocks are zero-copy
  /// slices of it.
  Status Write(sim::Context& ctx, int writer_node, const std::string& path,
               buf::Bytes content);
  Status Write(sim::Context& ctx, int writer_node, const std::string& path,
               std::string_view content);

  /// Stage a file without simulating the write (input "already in HDFS"
  /// before the benchmark starts). Placement is still performed, seeded by
  /// `placement_seed` for reproducibility.
  Status Install(const std::string& path, buf::Bytes content,
                 std::uint64_t placement_seed = 0);
  Status Install(const std::string& path, std::string_view content,
                 std::uint64_t placement_seed = 0);

  /// Read one block from a client on `reader_node`: free locality if a
  /// replica is local, otherwise remote datanode disk + network transfer.
  /// The result aliases the stored block — no payload copy; all replicas
  /// of a block share one allocation.
  Result<buf::Bytes> ReadBlock(sim::Context& ctx, int reader_node,
                               const std::string& path,
                               std::size_t block_index);

  /// Read a whole file (concatenated blocks). Because blocks are slices of
  /// the installed file's single chunk, the result is a flat zero-copy
  /// alias of the whole file whenever the file was written in one piece.
  Result<buf::Bytes> ReadAll(sim::Context& ctx, int reader_node,
                             const std::string& path);

  [[nodiscard]] Result<FileInfo> Stat(const std::string& path) const;
  /// Replica locations per block, for locality-aware schedulers.
  [[nodiscard]] Result<std::vector<std::vector<int>>> BlockLocations(
      const std::string& path) const;
  [[nodiscard]] bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  [[nodiscard]] std::vector<std::string> List(const std::string& prefix) const;

  /// Datanode failure: drop its replicas and re-replicate from survivors
  /// (charged on the surviving/new nodes' disks and NICs at time `t`).
  /// Blocks whose every replica is lost become unreadable (DataLoss).
  void OnNodeFailed(int node, SimTime t);

  /// Live-changeable replication factor (paper's locality workaround was
  /// raising it to the executor count).
  void set_replication(int replication);
  [[nodiscard]] const DfsOptions& options() const { return options_; }

  /// Total modeled bytes moved between nodes for DFS traffic.
  [[nodiscard]] Bytes network_bytes() const { return network_bytes_; }

 private:
  struct StoredBlock {
    BlockInfo info;
    buf::Bytes content;  // slice of the file's chunk; replicas share it
  };

  /// Locate block `block_index` of `path`, charge the full read cost
  /// (namenode RPC, datanode disk, network if remote, client CPU) and
  /// return a pointer to the stored block — no payload copy. The pointer
  /// is valid until the block is deleted or the file re-replicated away.
  Result<const StoredBlock*> AccessBlock(sim::Context& ctx, int reader_node,
                                         const std::string& path,
                                         std::size_t block_index);

  /// Choose `replication` distinct nodes, first one preferring `writer`.
  std::vector<int> PlaceReplicas(int writer, Rng& rng) const;
  /// Split content at line boundaries into ~actual_block_size zero-copy
  /// slices of `content`'s storage.
  std::vector<buf::Bytes> SplitBlocks(const buf::Bytes& content) const;
  void ChargeNamenode(sim::Context& ctx) const;

  /// True if `node` can host replicas (not failed at either level).
  [[nodiscard]] bool NodeLive(int node) const;

  cluster::Cluster& cluster_;
  DfsOptions options_;
  std::shared_ptr<net::Fabric> fabric_;
  std::vector<bool> datanode_dead_;
  struct DfsTags {
    obs::TagId block_reads = obs::kNoTag;
    obs::TagId bytes_read = obs::kNoTag;  // actual bytes handed to readers
    obs::TagId local_reads = obs::kNoTag;
    obs::TagId remote_reads = obs::kNoTag;
    obs::TagId network_bytes = obs::kNoTag;
    obs::TagId rereplicated = obs::kNoTag;
    obs::TagId lost = obs::kNoTag;
    obs::TagId read_latency = obs::kNoTag;  // histogram, seconds
  };
  DfsTags tags_;
  std::map<std::string, FileInfo> files_;
  std::map<BlockId, StoredBlock> blocks_;
  BlockId next_block_id_ = 1;
  Rng placement_rng_;
  Bytes network_bytes_ = 0;
};

}  // namespace pstk::dfs
