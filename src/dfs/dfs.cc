#include "dfs/dfs.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace pstk::dfs {

MiniDfs::MiniDfs(cluster::Cluster& cluster, DfsOptions options)
    : cluster_(cluster),
      options_(std::move(options)),
      fabric_(cluster.fabric(options_.transport)),
      datanode_dead_(cluster.nodes(), false),
      placement_rng_(0xD15F00D) {
  PSTK_CHECK_MSG(options_.replication >= 1, "replication must be >= 1");
  PSTK_CHECK_MSG(options_.block_size > 0, "block size must be > 0");
  obs::Registry& reg = cluster_.engine().obs();
  tags_.block_reads = reg.Intern("dfs.block_reads");
  tags_.bytes_read = reg.Intern("dfs.bytes_read");
  tags_.local_reads = reg.Intern("dfs.local_reads");
  tags_.remote_reads = reg.Intern("dfs.remote_reads");
  tags_.network_bytes = reg.Intern("dfs.network_bytes");
  tags_.rereplicated = reg.Intern("dfs.rereplicated_blocks");
  tags_.lost = reg.Intern("dfs.lost_blocks");
  tags_.read_latency = reg.Intern("dfs.read_latency");
  // Cluster-level node failures (FailNode / ApplyFaultPlan) reach the
  // namenode automatically; manual OnNodeFailed calls stay idempotent.
  cluster_.SubscribeNodeFailure(
      [this](int node, SimTime t) { OnNodeFailed(node, t); });
}

void MiniDfs::set_replication(int replication) {
  PSTK_CHECK_MSG(replication >= 1, "replication must be >= 1");
  options_.replication = replication;
}

bool MiniDfs::NodeLive(int node) const {
  return node >= 0 && node < cluster_.nodes() && !datanode_dead_[node] &&
         !cluster_.NodeFailed(node);
}

void MiniDfs::ChargeNamenode(sim::Context& ctx) const {
  ctx.Compute(options_.namenode_rpc_latency);
}

std::vector<int> MiniDfs::PlaceReplicas(int writer, Rng& rng) const {
  const int n = cluster_.nodes();
  const int want = std::min(options_.replication, n);
  std::vector<int> nodes;
  nodes.reserve(want);
  // HDFS default policy: first replica on the writer (if it hosts a
  // datanode), the rest spread across distinct nodes.
  if (NodeLive(writer)) {
    nodes.push_back(writer);
  }
  std::vector<int> candidates;
  for (int i = 0; i < n; ++i) {
    if (NodeLive(i) &&
        std::find(nodes.begin(), nodes.end(), i) == nodes.end()) {
      candidates.push_back(i);
    }
  }
  while (static_cast<int>(nodes.size()) < want && !candidates.empty()) {
    const auto pick = rng.Below(candidates.size());
    nodes.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return nodes;
}

std::vector<buf::Bytes> MiniDfs::SplitBlocks(const buf::Bytes& content) const {
  // Actual bytes per block under the run's data scale, cut at the last
  // newline before the boundary so every block holds whole records. Blocks
  // are zero-copy slices of the file's storage.
  const auto target = static_cast<Bytes>(
      static_cast<double>(options_.block_size) * cluster_.data_scale());
  const Bytes actual_block = std::max<Bytes>(1, target);
  const std::string_view view = content.view();

  std::vector<buf::Bytes> blocks;
  std::size_t pos = 0;
  while (pos < view.size()) {
    std::size_t end = std::min(view.size(),
                               pos + static_cast<std::size_t>(actual_block));
    if (end < view.size()) {
      const std::size_t nl = view.rfind('\n', end);
      if (nl != std::string_view::npos && nl > pos) {
        end = nl + 1;
      }
      // else: a single record larger than a block — keep the hard cut.
    }
    blocks.push_back(content.Slice(pos, end - pos));
    pos = end;
  }
  if (blocks.empty()) blocks.push_back(buf::Bytes());
  return blocks;
}

Status MiniDfs::Install(const std::string& path, buf::Bytes content,
                        std::uint64_t placement_seed) {
  if (files_.count(path) > 0) return AlreadyExists("file exists: " + path);
  if (!content.flat()) content = content.Flatten();
  Rng rng(placement_seed == 0 ? placement_rng_.Next() : placement_seed);

  FileInfo file;
  file.path = path;
  file.actual_size = content.size();
  file.modeled_size = cluster_.Modeled(content.size());

  for (buf::Bytes& piece : SplitBlocks(content)) {
    StoredBlock block;
    block.info.id = next_block_id_++;
    block.info.actual_size = piece.size();
    block.info.modeled_size = cluster_.Modeled(piece.size());
    block.info.replicas = PlaceReplicas(/*writer=*/-1, rng);
    if (block.info.replicas.empty()) {
      return Unavailable("no live datanodes for " + path);
    }
    block.content = std::move(piece);
    file.blocks.push_back(block.info.id);
    blocks_.emplace(block.info.id, std::move(block));
  }
  files_.emplace(path, std::move(file));
  return OkStatus();
}

Status MiniDfs::Install(const std::string& path, std::string_view content,
                        std::uint64_t placement_seed) {
  return Install(path, buf::Bytes::Copy(content), placement_seed);
}

Status MiniDfs::Write(sim::Context& ctx, int writer_node,
                      const std::string& path, buf::Bytes content) {
  if (files_.count(path) > 0) return AlreadyExists("file exists: " + path);
  if (!content.flat()) content = content.Flatten();
  ChargeNamenode(ctx);

  FileInfo file;
  file.path = path;
  file.actual_size = content.size();
  file.modeled_size = cluster_.Modeled(content.size());

  for (buf::Bytes& piece : SplitBlocks(content)) {
    StoredBlock block;
    block.info.id = next_block_id_++;
    block.info.actual_size = piece.size();
    block.info.modeled_size = cluster_.Modeled(piece.size());
    block.info.replicas = PlaceReplicas(writer_node, ctx.rng());
    if (block.info.replicas.empty()) {
      return Unavailable("no live datanodes for " + path);
    }
    block.content = std::move(piece);

    // Pipeline replication: client -> r0 -> r1 -> r2; each hop is a network
    // transfer (unless local) followed by a disk write. The block commits
    // when the last replica has durably written it.
    const Bytes modeled = block.info.modeled_size;
    SimTime t = ctx.now();
    int upstream = writer_node;
    for (int replica : block.info.replicas) {
      if (replica != upstream) {
        const auto times = fabric_->Transfer(upstream, replica, modeled, t);
        network_bytes_ += modeled;
        cluster_.engine().obs().Add(tags_.network_bytes, modeled);
        t = times.arrival;
      }
      t = cluster_.scratch_disk(replica)->Write(modeled, t);
      upstream = replica;
    }
    ctx.SleepUntil(t);

    file.blocks.push_back(block.info.id);
    blocks_.emplace(block.info.id, std::move(block));
  }
  files_.emplace(path, std::move(file));
  return OkStatus();
}

Status MiniDfs::Write(sim::Context& ctx, int writer_node,
                      const std::string& path, std::string_view content) {
  return Write(ctx, writer_node, path, buf::Bytes::Copy(content));
}

Result<const MiniDfs::StoredBlock*> MiniDfs::AccessBlock(
    sim::Context& ctx, int reader_node, const std::string& path,
    std::size_t block_index) {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  const FileInfo& file = it->second;
  if (block_index >= file.blocks.size()) {
    return OutOfRange("block index " + std::to_string(block_index) +
                      " out of range for " + path);
  }
  ChargeNamenode(ctx);
  obs::Registry& reg = cluster_.engine().obs();
  const SimTime t0 = ctx.now();
  reg.Add(tags_.block_reads);
  const StoredBlock& block = blocks_.at(file.blocks[block_index]);
  if (block.info.replicas.empty()) {
    return DataLoss("all replicas lost for block " +
                    std::to_string(block.info.id) + " of " + path);
  }

  // Prefer a local replica; otherwise read from the first live replica.
  int source = -1;
  for (int replica : block.info.replicas) {
    if (replica == reader_node) {
      source = replica;
      break;
    }
  }
  if (source == -1) source = block.info.replicas.front();

  const Bytes modeled = block.info.modeled_size;
  SimTime t = cluster_.scratch_disk(source)->Read(modeled, ctx.now());
  if (source != reader_node) {
    const auto times = fabric_->Transfer(source, reader_node, modeled, t);
    network_bytes_ += modeled;
    reg.Add(tags_.remote_reads);
    reg.Add(tags_.network_bytes, modeled);
    ctx.Compute(times.receiver_cpu);
    t = times.arrival;
  } else {
    reg.Add(tags_.local_reads);
  }
  // DataNode streaming + checksum verification on the client.
  ctx.Compute(static_cast<double>(modeled) * options_.client_cpu_per_byte);
  ctx.SleepUntil(t);
  reg.Add(tags_.bytes_read, block.info.actual_size);
  reg.Observe(tags_.read_latency, ctx.now() - t0);
  return &block;
}

Result<buf::Bytes> MiniDfs::ReadBlock(sim::Context& ctx, int reader_node,
                                      const std::string& path,
                                      std::size_t block_index) {
  auto block = AccessBlock(ctx, reader_node, path, block_index);
  if (!block.ok()) return block.status();
  return block.value()->content;  // refcount bump, no payload copy
}

Result<buf::Bytes> MiniDfs::ReadAll(sim::Context& ctx, int reader_node,
                                    const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  std::vector<buf::Bytes> pieces;
  pieces.reserve(it->second.blocks.size());
  for (std::size_t i = 0; i < it->second.blocks.size(); ++i) {
    auto block = AccessBlock(ctx, reader_node, path, i);
    if (!block.ok()) return block.status();
    pieces.push_back(block.value()->content);
  }
  // Adjacent slices of one installed file coalesce back into a flat view:
  // a whole-file read is a zero-copy alias of the installed content.
  return buf::Bytes::Concat(pieces);
}

Result<FileInfo> MiniDfs::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  return it->second;
}

Result<std::vector<std::vector<int>>> MiniDfs::BlockLocations(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  std::vector<std::vector<int>> locations;
  locations.reserve(it->second.blocks.size());
  for (BlockId id : it->second.blocks) {
    locations.push_back(blocks_.at(id).info.replicas);
  }
  return locations;
}

bool MiniDfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Status MiniDfs::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return NotFound("no such file: " + path);
  for (BlockId id : it->second.blocks) blocks_.erase(id);
  files_.erase(it);
  return OkStatus();
}

std::vector<std::string> MiniDfs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, info] : files_) {
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

void MiniDfs::OnNodeFailed(int node, SimTime t) {
  PSTK_CHECK_MSG(node >= 0 && node < cluster_.nodes(), "bad node " << node);
  if (datanode_dead_[node]) return;  // already handled (e.g. via subscription)
  datanode_dead_[node] = true;
  std::size_t lost = 0;
  std::size_t rereplicated = 0;
  for (auto& [id, block] : blocks_) {
    auto& replicas = block.info.replicas;
    const auto before = replicas.size();
    replicas.erase(std::remove(replicas.begin(), replicas.end(), node),
                   replicas.end());
    if (replicas.size() == before) continue;
    if (replicas.empty()) {
      ++lost;
      continue;
    }
    // Background re-replication: copy from a survivor to a node that lacks
    // the block; charged directly on the involved resources at time t.
    std::vector<int> candidates;
    for (int i = 0; i < cluster_.nodes(); ++i) {
      if (!NodeLive(i)) continue;
      if (std::find(replicas.begin(), replicas.end(), i) != replicas.end()) {
        continue;
      }
      candidates.push_back(i);
    }
    if (candidates.empty()) continue;
    const int target =
        candidates[placement_rng_.Below(candidates.size())];
    const int source = replicas.front();
    const Bytes modeled = block.info.modeled_size;
    SimTime done = cluster_.scratch_disk(source)->Read(modeled, t);
    done = fabric_->Transfer(source, target, modeled, done).arrival;
    network_bytes_ += modeled;
    cluster_.engine().obs().Add(tags_.network_bytes, modeled);
    cluster_.scratch_disk(target)->Write(modeled, done);
    replicas.push_back(target);
    ++rereplicated;
  }
  obs::Registry& reg = cluster_.engine().obs();
  reg.Add(tags_.rereplicated, rereplicated);
  reg.Add(tags_.lost, lost);
  PSTK_INFO("dfs") << "node " << node << " failed: re-replicated "
                   << rereplicated << " blocks, lost " << lost;
}

}  // namespace pstk::dfs
