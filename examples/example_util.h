// Shared scaffolding for the example programs: cluster construction and
// input staging. The framework-specific code in each example sits between
// BENCHMARK-BEGIN/END markers so the Table III analysis measures only it.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/config.h"
#include "dfs/dfs.h"
#include "sim/engine.h"
#include "workloads/stackexchange.h"

namespace pstk::examples {

struct Env {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::MiniDfs> dfs;
};

/// Build a Comet-like cluster with `nodes` nodes at `data_scale`.
inline std::unique_ptr<Env> MakeEnv(int nodes, double data_scale,
                                    Bytes dfs_block = 16 * kMiB) {
  auto env = std::make_unique<Env>();
  env->cluster = std::make_unique<cluster::Cluster>(
      env->engine, cluster::ClusterSpec::Comet(static_cast<std::size_t>(nodes)),
      data_scale);
  dfs::DfsOptions options;
  options.block_size = dfs_block;
  env->dfs = std::make_unique<dfs::MiniDfs>(*env->cluster, options);
  return env;
}

/// Stage a StackExchange dataset on the DFS and on every node's scratch;
/// returns the generator's ground-truth stats.
inline workloads::StackExchangeStats StagePosts(Env& env,
                                                Bytes actual_bytes,
                                                const std::string& dfs_path,
                                                const std::string& local_path) {
  workloads::StackExchangeParams params;
  params.target_bytes = actual_bytes;
  workloads::StackExchangeStats stats;
  const std::string data = workloads::GenerateStackExchange(params, &stats);
  if (!dfs_path.empty()) {
    auto installed = env.dfs->Install(dfs_path, data);
    if (!installed.ok()) {
      std::fprintf(stderr, "stage failed: %s\n", installed.ToString().c_str());
      std::exit(1);
    }
  }
  if (!local_path.empty()) {
    for (int n = 0; n < env.cluster->nodes(); ++n) {
      env.cluster->scratch(n).Install(local_path, data);
    }
  }
  return stats;
}

}  // namespace pstk::examples
