// AnswersCount with MiniMR (the Hadoop MapReduce version, §V-C).
//
// Classic Hadoop shape: the mapper emits ("Q",1) / ("A",1) per post, a
// combiner pre-aggregates, one reducer sums, and the result is read back
// from the part file in the DFS.
//
//   ./build/examples/answerscount_mr [nodes=4] [mb=8] [scale=0.001]
#include <cstdio>

#include "example_util.h"
#include "mr/mr.h"

using namespace pstk;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  const Bytes actual = MiB(static_cast<double>(config->GetInt("mb", 8)));
  const double scale = config->GetDouble("scale", 0.001);

  auto env = examples::MakeEnv(nodes, scale, /*dfs_block=*/16 * kMiB);
  const auto truth = examples::StagePosts(*env, actual, "/in/posts.txt", "");

  // BENCHMARK-BEGIN
  mr::MrEngine engine(*env->cluster, *env->dfs);
  mr::JobConf conf;
  conf.name = "answerscount";
  conf.input_path = "/in/posts.txt";
  conf.output_path = "/out/answerscount";
  conf.num_reducers = 1;

  auto map = [](const std::string& line, mr::Emitter& out) {
    switch (workloads::ClassifyPost(line)) {
      case workloads::PostKind::kQuestion: out.Emit("Q", "1"); break;
      case workloads::PostKind::kAnswer: out.Emit("A", "1"); break;
      default: break;
    }
  };
  auto reduce = [](const std::string& key,
                   const std::vector<std::string>& values, mr::Emitter& out) {
    std::int64_t sum = 0;
    for (const auto& v : values) sum += std::strtoll(v.c_str(), nullptr, 10);
    out.Emit(key, std::to_string(sum));
  };
  auto result = engine.RunJob(conf, map, reduce, /*combine=*/reduce);
  // BENCHMARK-END
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Read the reducer output back.
  std::uint64_t questions = 0;
  std::uint64_t answers = 0;
  env->engine.Spawn("result-reader", [&](sim::Context& ctx) {
    auto part = env->dfs->ReadAll(ctx, 0, "/out/answerscount/part-r-0");
    if (!part.ok()) return;
    std::size_t pos = 0;
    const std::string text = part.value().ToString();
    while (pos < text.size()) {
      auto nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      const std::string line = text.substr(pos, nl - pos);
      pos = nl + 1;
      const auto tab = line.find('\t');
      if (tab == std::string::npos) continue;
      const auto value = std::strtoull(line.c_str() + tab + 1, nullptr, 10);
      if (line.substr(0, tab) == "Q") questions = value;
      if (line.substr(0, tab) == "A") answers = value;
    }
  });
  if (auto run = env->engine.Run(); !run.status.ok()) {
    std::fprintf(stderr, "%s\n", run.status.ToString().c_str());
    return 1;
  }

  std::printf("Hadoop-MR AnswersCount (%d nodes, %s modeled)\n", nodes,
              FormatBytes(env->cluster->Modeled(actual)).c_str());
  const double avg = questions ? static_cast<double>(answers) /
                                     static_cast<double>(questions)
                               : 0.0;
  std::printf("  questions=%llu answers=%llu avg=%.3f (truth %.3f)\n",
              static_cast<unsigned long long>(questions),
              static_cast<unsigned long long>(answers), avg,
              truth.AverageAnswers());
  std::printf("  simulated job time: %s  (maps=%llu spills=%s shuffle=%s)\n",
              FormatDuration(result->elapsed).c_str(),
              static_cast<unsigned long long>(result->counters.map_tasks),
              FormatBytes(result->counters.spilled_bytes).c_str(),
              FormatBytes(result->counters.shuffled_bytes).c_str());
  return questions == truth.questions && answers == truth.answers ? 0 : 2;
}
