// AnswersCount with MiniMPI and MPI-IO parallel reads (§V-C of the paper).
//
// Each rank opens the node-local replica collectively, reads its byte
// chunk with ReadAtAll (whose count is an `int`, i.e. at most 2 GB of the
// modeled file per rank), counts questions/answers with the usual
// skip-partial-first-line convention, and reduces to rank 0.
//
//   ./build/examples/answerscount_mpi [nodes=4] [ppn=8] [mb=8] [scale=0.001]
#include <cstdio>
#include <limits>

#include "example_util.h"
#include "mpi/mpi.h"

using namespace pstk;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  const int ppn = static_cast<int>(config->GetInt("ppn", 8));
  const Bytes actual = MiB(static_cast<double>(config->GetInt("mb", 8)));
  const double scale = config->GetDouble("scale", 0.001);

  auto env = examples::MakeEnv(nodes, scale);
  const auto truth =
      examples::StagePosts(*env, actual, "", "/scratch/posts.txt");

  std::uint64_t questions = 0;
  std::uint64_t answers = 0;
  bool unsupported = false;

  mpi::World world(*env->cluster, nodes * ppn, ppn);
  auto elapsed = world.RunSpmd([&](mpi::Comm& comm) {
    // BENCHMARK-BEGIN
    auto file = mpi::File::OpenAll(comm, "/scratch/posts.txt");
    if (!file.ok()) return;

    const Bytes chunk = file->size() / comm.size();
    if (chunk > static_cast<Bytes>(std::numeric_limits<std::int32_t>::max())) {
      // MPI_File_read_at_all cannot express chunks above INT_MAX bytes —
      // the paper's structural failure below ~40 processes on 80 GB.
      if (comm.rank() == 0) unsupported = true;
      return;
    }
    const Bytes offset = chunk * comm.rank();
    const Bytes len =
        comm.rank() == comm.size() - 1 ? file->size() - offset : chunk;
    auto data =
        file->ReadLinesAtAll(comm, offset, static_cast<std::int32_t>(len));
    if (!data.ok()) return;

    const auto local = workloads::CountPosts(data.value());
    // Native counting cost over the modeled chunk.
    comm.ctx().Compute(static_cast<double>(len) / 1.2e9);

    const std::vector<std::uint64_t> mine{local.questions, local.answers};
    std::vector<std::uint64_t> total(2);
    comm.Reduce<std::uint64_t>(mine, total, /*root=*/0);
    if (comm.rank() == 0) {
      questions = total[0];
      answers = total[1];
    }
    // BENCHMARK-END
  });
  if (!elapsed.ok()) {
    std::fprintf(stderr, "%s\n", elapsed.status().ToString().c_str());
    return 1;
  }

  std::printf("MPI AnswersCount (%d ranks on %d nodes, %s modeled)\n",
              nodes * ppn, nodes,
              FormatBytes(env->cluster->Modeled(actual)).c_str());
  if (unsupported) {
    std::printf("  FAILED: per-rank chunk exceeds INT_MAX (use more ranks)\n");
    return 3;
  }
  const double avg = questions ? static_cast<double>(answers) /
                                     static_cast<double>(questions)
                               : 0.0;
  std::printf("  questions=%llu answers=%llu avg=%.3f (truth %.3f)\n",
              static_cast<unsigned long long>(questions),
              static_cast<unsigned long long>(answers), avg,
              truth.AverageAnswers());
  std::printf("  simulated job time: %s\n",
              FormatDuration(elapsed.value()).c_str());
  return questions == truth.questions && answers == truth.answers ? 0 : 2;
}
