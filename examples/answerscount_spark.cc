// AnswersCount with MiniSpark (§V-C). The idiomatic Spark shape: textFile
// from the DFS, map each post to a (questions, answers) increment, and a
// single reduce — no shuffle at all, which is exactly why Spark scales so
// well on this benchmark.
//
//   ./build/examples/answerscount_spark [nodes=4] [mb=8] [scale=0.001] [rdma=false]
#include <cstdio>

#include "example_util.h"
#include "spark/spark.h"

using namespace pstk;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  const Bytes actual = MiB(static_cast<double>(config->GetInt("mb", 8)));
  const double scale = config->GetDouble("scale", 0.001);

  auto env = examples::MakeEnv(nodes, scale, /*dfs_block=*/16 * kMiB);
  const auto truth = examples::StagePosts(*env, actual, "/in/posts.txt", "");

  spark::SparkOptions options;
  options.rdma_shuffle = config->GetBool("rdma", false);
  spark::MiniSpark spark(*env->cluster, env->dfs.get(), options);

  std::uint64_t questions = 0;
  std::uint64_t answers = 0;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    // BENCHMARK-BEGIN
    using Counts = std::pair<std::uint64_t, std::uint64_t>;
    auto lines = sc.TextFile("/in/posts.txt");
    if (!lines.ok()) return;
    auto counts = lines->Map<Counts>([](const std::string& line) {
      switch (workloads::ClassifyPost(line)) {
        case workloads::PostKind::kQuestion: return Counts{1, 0};
        case workloads::PostKind::kAnswer: return Counts{0, 1};
        default: return Counts{0, 0};
      }
    });
    auto total = counts.Reduce([](const Counts& a, const Counts& b) {
      return Counts{a.first + b.first, a.second + b.second};
    });
    if (!total.ok()) return;
    questions = total->first;
    answers = total->second;
    // BENCHMARK-END
  });
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Spark AnswersCount (%d nodes x %d executors, %s modeled)\n",
              nodes, options.executors_per_node,
              FormatBytes(env->cluster->Modeled(actual)).c_str());
  const double avg = questions ? static_cast<double>(answers) /
                                     static_cast<double>(questions)
                               : 0.0;
  std::printf("  questions=%llu answers=%llu avg=%.3f (truth %.3f)\n",
              static_cast<unsigned long long>(questions),
              static_cast<unsigned long long>(answers), avg,
              truth.AverageAnswers());
  std::printf("  simulated app time: %.3fs (tasks=%llu)\n", result->elapsed,
              static_cast<unsigned long long>(result->stats.tasks_launched));
  return questions == truth.questions && answers == truth.answers ? 0 : 2;
}
