// PageRank with MiniSpark, in the tuned BigDataBench style of the paper's
// Fig 5: the link table is hash-partitioned and persisted, ranks are
// persisted each iteration, and the join is narrow (co-partitioned), so
// each iteration shuffles only the contribution aggregation.
//
//   ./build/examples/pagerank_spark [nodes=4] [vertices=20000] [iters=5]
#include <cstdio>

#include "example_util.h"
#include "spark/spark.h"
#include "workloads/graph.h"
#include "workloads/pagerank.h"

using namespace pstk;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  const auto vertices =
      static_cast<workloads::VertexId>(config->GetInt("vertices", 20000));
  const int iters = static_cast<int>(config->GetInt("iters", 5));

  // Generate the graph and its serial reference ranks.
  workloads::GraphParams gparams;
  gparams.vertices = vertices;
  const workloads::Graph graph = workloads::GenerateGraph(gparams);
  const auto reference = workloads::PageRankReference(graph, iters);

  auto env = examples::MakeEnv(nodes, /*data_scale=*/1.0);
  if (auto s = env->dfs->Install("/in/graph.adj",
                                 workloads::GraphToAdjacencyText(graph));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  spark::MiniSpark spark(*env->cluster, env->dfs.get(), {});
  double max_delta = -1;
  auto result = spark.RunApp([&](spark::SparkContext& sc) {
    using K = std::int64_t;
    const int parts = sc.default_parallelism();

    auto text = sc.TextFile("/in/graph.adj");
    if (!text.ok()) return;
    // links: (src, adjacency list), hash-partitioned + persisted.
    auto links =
        text->Map<std::pair<K, std::vector<K>>>([](const std::string& line) {
              workloads::VertexId src = 0;
              std::vector<workloads::VertexId> targets;
              workloads::ParseAdjacencyLine(line, &src, &targets);
              std::vector<K> out(targets.begin(), targets.end());
              return std::pair<K, std::vector<K>>(src, std::move(out));
            })
            .AsPairs<K, std::vector<K>>()
            .PartitionBy(parts);
    links.Persist(spark::StorageLevel::kMemoryAndDisk);

    // ranks: start at 1.0, co-partitioned with links.
    auto ranks = links.MapValues<double>([](const std::vector<K>&) {
      return 1.0;
    });

    for (int i = 0; i < iters; ++i) {
      auto joined = links.Join(ranks);  // narrow: same partitioner
      auto contribs =
          joined.AsRdd()
              .FlatMap<std::pair<K, double>>(
                  [](const std::pair<K, std::pair<std::vector<K>, double>>&
                         entry) {
                    const auto& [src, lists] = entry;
                    const auto& [urls, rank] = lists;
                    std::vector<std::pair<K, double>> out;
                    out.reserve(urls.size() + 1);
                    // Self-entry keeps zero-in-degree vertices alive (the
                    // stock Scala snippet silently drops them).
                    out.emplace_back(src, 0.0);
                    const double share =
                        rank / static_cast<double>(urls.size());
                    for (K url : urls) out.emplace_back(url, share);
                    return out;
                  })
              .AsPairs<K, double>();
      // The paper's Fig 5 tuning: persist the per-iteration RDD.
      auto next = contribs.ReduceByKey(
          [](double a, double b) { return a + b; }, parts);
      ranks = next.MapValues<double>([](const double& sum) {
        return workloads::kBaseRank + workloads::kDamping * sum;
      });
      ranks.Persist(spark::StorageLevel::kMemoryAndDisk);
      auto materialized = ranks.Count();  // materialize this step
      if (!materialized.ok()) return;
    }

    auto final_ranks = ranks.CollectAsMap();
    if (!final_ranks.ok()) return;
    std::vector<double> got(reference.size(), workloads::kBaseRank);
    for (const auto& [v, r] : final_ranks.value()) {
      got[static_cast<std::size_t>(v)] = r;
    }
    max_delta = workloads::MaxRankDelta(got, reference);
  });
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Spark PageRank (%u vertices, %llu edges, %d iterations)\n",
              graph.vertices,
              static_cast<unsigned long long>(graph.edge_count()), iters);
  std::printf("  max |rank - reference| = %.2e\n", max_delta);
  std::printf("  simulated app time: %.3fs  shuffle: fetched=%s local=%s\n",
              result->elapsed,
              FormatBytes(result->stats.shuffle_fetched_bytes).c_str(),
              FormatBytes(result->stats.shuffle_local_bytes).c_str());
  return max_delta >= 0 && max_delta < 1e-9 ? 0 : 2;
}
