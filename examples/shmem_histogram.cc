// Distributed histogram with MiniSHMEM: the irregular, fine-grained
// communication pattern the survey calls out as OpenSHMEM's sweet spot
// (§II-C) — every PE scatters atomic increments across bins owned by all
// the other PEs, with no receiver-side code at all.
//
//   ./build/examples/shmem_histogram [nodes=4] [ppn=4] [bins=64] [samples=20000]
#include <cstdio>
#include <vector>

#include "cluster/cluster.h"
#include "common/config.h"
#include "shmem/shmem.h"
#include "sim/engine.h"

using namespace pstk;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  const int ppn = static_cast<int>(config->GetInt("ppn", 4));
  const int bins = static_cast<int>(config->GetInt("bins", 64));
  const int samples = static_cast<int>(config->GetInt("samples", 20000));

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  shmem::ShmemWorld world(cluster, nodes * ppn, ppn);

  std::vector<std::int64_t> histogram(bins, 0);
  auto elapsed = world.RunSpmd([&](shmem::Pe& pe) {
    const int npes = pe.n_pes();
    const int bins_per_pe = (bins + npes - 1) / npes;
    auto local_bins = pe.Malloc<std::int64_t>(bins_per_pe);
    for (int b = 0; b < bins_per_pe; ++b) pe.Local(local_bins)[b] = 0;
    pe.BarrierAll();

    // Each PE samples a skewed distribution and increments the owner PE's
    // bin with a remote atomic — no matching receive anywhere.
    for (int s = 0; s < samples / npes; ++s) {
      const auto bin = static_cast<int>(
          pe.ctx().rng().PowerLaw(static_cast<std::uint64_t>(bins), 1.4) - 1);
      const int owner = bin / bins_per_pe;
      const int slot = bin % bins_per_pe;
      pe.AtomicFetchAdd(local_bins.at(slot), 1, owner);
    }
    pe.BarrierAll();

    // PE 0 gathers the final histogram with one-sided gets.
    if (pe.my_pe() == 0) {
      for (int b = 0; b < bins; ++b) {
        const int owner = b / bins_per_pe;
        const int slot = b % bins_per_pe;
        histogram[b] = pe.GetValue(local_bins.at(slot), owner);
      }
    }
  });
  if (!elapsed.ok()) {
    std::fprintf(stderr, "%s\n", elapsed.status().ToString().c_str());
    return 1;
  }

  std::int64_t total = 0;
  for (std::int64_t count : histogram) total += count;
  std::printf("SHMEM histogram: %d bins over %d PEs, %lld samples placed\n",
              bins, nodes * ppn, static_cast<long long>(total));
  std::printf("  head bins: %lld %lld %lld %lld\n",
              static_cast<long long>(histogram[0]),
              static_cast<long long>(histogram[1]),
              static_cast<long long>(histogram[2]),
              static_cast<long long>(histogram[3]));
  std::printf("  simulated job time: %s\n",
              FormatDuration(elapsed.value()).c_str());
  const auto expected =
      static_cast<std::int64_t>(samples / (nodes * ppn)) * (nodes * ppn);
  return total == expected ? 0 : 2;
}
