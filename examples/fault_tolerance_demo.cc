// Fault-tolerance contrast (paper §VI-D): the same node failure is
// injected into a Spark job and an MPI job.
//
//  * Spark: the driver notices the lost executors, shuffle outputs and
//    cached partitions on the dead node are recomputed from lineage, and
//    the job finishes with the correct answer.
//  * MPI: the job has no recovery path — losing a rank aborts it.
//  * MPI + CkptPolicy: the same job opted into pstk::ckpt survives — the
//    RestartManager rolls it back to the last committed snapshot and
//    replays, paying the requeue delay lineage recovery never pays.
//
// With --verify, the runtime checkers annotate the outcomes: the Spark
// run reports the broken-then-recovered stage barrier, the MPI run's
// deadlock report names the wait-for cycle among the surviving ranks.
//
//   ./build/examples/fault_tolerance_demo [nodes=4] [--verify]
#include <cstdio>

#include "bench_opts.h"
#include "ckpt/ckpt.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "mpi/mpi.h"
#include "serde/serde.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "spark/spark.h"

using namespace pstk;

namespace {

bool RunSparkWithFailure(int nodes) {
  sim::Engine engine;
  bench::Observability::Instance().Attach(engine);
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  spark::SparkOptions options;
  options.executors_per_node = 2;
  options.app_startup = Millis(200);
  spark::MiniSpark spark(cluster, nullptr, options);

  std::int64_t keys = -1;
  std::optional<Result<spark::AppResult>> outcome;
  spark.Submit(
      [&](spark::SparkContext& sc) {
        std::vector<std::pair<std::int64_t, std::int64_t>> data;
        for (std::int64_t i = 0; i < 4000; ++i) data.emplace_back(i % 97, i);
        auto reduced = sc.Parallelize(std::move(data), 2 * nodes)
                           .AsPairs<std::int64_t, std::int64_t>()
                           .ReduceByKey([](std::int64_t a, std::int64_t b) {
                             return a + b;
                           });
        auto first = reduced.Count();   // materialize the shuffle
        sc.ctx().SleepUntil(30.0);      // failure lands here
        auto second = reduced.Count();  // needs the lost shuffle outputs
        if (second.ok()) keys = second.value();
      },
      [&](Result<spark::AppResult> result) { outcome = std::move(result); });
  cluster.FailNode(nodes - 1, 20.0);
  auto run = engine.Run();

  const bool ok = run.status.ok() && outcome.has_value() && outcome->ok() &&
                  keys == 97;
  std::printf("Spark + node failure: %s", ok ? "job COMPLETED" : "job FAILED");
  if (ok) {
    std::printf(" (97/97 keys correct, %llu fetch failures recovered, "
                "%.1fs simulated)\n",
                static_cast<unsigned long long>(
                    (*outcome)->stats.fetch_failures),
                (*outcome)->elapsed);
  } else {
    std::printf("\n");
  }
  bench::Observability::Instance().Collect(engine, "spark+failure");
  return ok;
}

bool RunMpiWithFailure(int nodes) {
  sim::Engine engine;
  bench::Observability::Instance().Attach(engine);
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  mpi::World world(cluster, nodes * 2, 2);
  world.SpawnRanks([](mpi::Comm& comm) {
    // An iterative allreduce loop, the typical HPC inner kernel.
    std::vector<double> value{1.0};
    std::vector<double> sum(1);
    for (int i = 0; i < 100; ++i) {
      comm.ctx().SleepFor(0.5);
      comm.Allreduce<double>(value, sum);
    }
  });
  cluster.FailNode(nodes - 1, 20.0);
  auto run = engine.Run();
  // Losing ranks leaves the collective stuck: the job aborts (the engine
  // reports the surviving ranks deadlocked in Recv).
  const bool aborted = run.killed > 0;
  std::printf("MPI   + node failure: %s\n",
              aborted ? "job ABORTED (no recovery path)"
                      : "job unexpectedly survived");
  bench::Observability::Instance().Collect(engine, "mpi+failure");
  return aborted;
}

bool RunMpiWithCheckpoints(int nodes) {
  // The same iterative kernel, opted into checkpoint/restart: snapshots
  // go to NFS every 5 s of virtual time, and the RestartManager replays
  // from the last committed epoch after the failure.
  ckpt::CkptPolicy policy;
  policy.interval = Seconds(5);
  policy.target_disk = ckpt::Target::kNfs;
  policy.restart_delay = Seconds(30);

  ckpt::HpcJob job;
  job.spec = cluster::ClusterSpec::Comet(static_cast<std::size_t>(nodes));
  job.procs = nodes * 2;
  job.procs_per_node = 2;
  job.on_attempt = [](sim::Engine& engine, cluster::Cluster&) {
    bench::Observability::Instance().Attach(engine);
  };
  job.on_attempt_end = [](sim::Engine& engine, int attempt, bool) {
    bench::Observability::Instance().Collect(
        engine, "mpi+ckpt attempt " + std::to_string(attempt));
  };

  sim::FaultPlan plan;
  plan.events.push_back({/*node=*/nodes - 1, /*time=*/20.0, /*down=*/1.0});

  double final_sum = 0.0;
  ckpt::RestartManager manager(policy, plan);
  auto outcome = manager.RunMpi(
      job, [&](mpi::Comm& comm, ckpt::CheckpointCoordinator& coord) {
        const int rank = comm.rank();
        const int node = rank / 2;
        comm.Barrier();  // collective boundary: channels quiesced
        int start = 0;
        double total = 0.0;
        const serde::Buffer* frag = coord.Restore(comm.ctx(), rank, node);
        if (frag != nullptr) {
          serde::Reader r(*frag);
          start = static_cast<int>(r.ReadRaw<std::int32_t>().value()) + 1;
          total = r.ReadRaw<double>().value();
        }
        std::vector<double> value{1.0};
        std::vector<double> sum(1);
        for (int i = start; i < 100; ++i) {
          comm.ctx().SleepFor(0.5);
          comm.Allreduce<double>(value, sum);
          total += sum[0];
          serde::Writer w;
          w.WriteRaw<std::int32_t>(i);
          w.WriteRaw<double>(total);
          coord.Checkpoint(comm.ctx(), rank, node, i, w.TakeBuffer());
        }
        if (rank == 0) final_sum = total;
      });
  const bool ok = outcome.ok() && outcome.value().completed &&
                  final_sum == 100.0 * (2.0 * nodes);
  if (ok) {
    std::printf("MPI+ckpt + node failure: job COMPLETED (%d restart(s), "
                "%d snapshot(s), %.1fs rolled back, %.1fs simulated)\n",
                outcome.value().restarts,
                outcome.value().checkpoints_committed,
                outcome.value().rollback_work,
                outcome.value().time_to_solution);
  } else {
    std::printf("MPI+ckpt + node failure: job FAILED\n");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  std::printf("Injecting a node failure at t=20s into both paradigms:\n\n");
  const bool spark_ok = RunSparkWithFailure(nodes);
  const bool mpi_ok = RunMpiWithFailure(nodes);
  const bool ckpt_ok = RunMpiWithCheckpoints(nodes);
  std::printf(
      "\nTakeaway (paper §VI-D): lineage lets Spark recompute exactly the "
      "lost partitions;\nplain MPI aborts — but with an opt-in CkptPolicy "
      "(pstk::ckpt) the same job rolls\nback to its last snapshot and "
      "finishes with the same answer.\n");
  if (!bench::Observability::Instance().Finish()) return 1;
  return spark_ok && mpi_ok && ckpt_ok ? 0 : 2;
}
