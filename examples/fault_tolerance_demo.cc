// Fault-tolerance contrast (paper §VI-D): the same node failure is
// injected into a Spark job and an MPI job.
//
//  * Spark: the driver notices the lost executors, shuffle outputs and
//    cached partitions on the dead node are recomputed from lineage, and
//    the job finishes with the correct answer.
//  * MPI: the job has no recovery path — losing a rank aborts it.
//
// With --verify, the runtime checkers annotate both outcomes: the Spark
// run reports the broken-then-recovered stage barrier, the MPI run's
// deadlock report names the wait-for cycle among the surviving ranks.
//
//   ./build/examples/fault_tolerance_demo [nodes=4] [--verify]
#include <cstdio>

#include "bench_opts.h"
#include "cluster/cluster.h"
#include "common/config.h"
#include "mpi/mpi.h"
#include "sim/engine.h"
#include "spark/spark.h"

using namespace pstk;

namespace {

bool RunSparkWithFailure(int nodes) {
  sim::Engine engine;
  bench::Observability::Instance().Attach(engine);
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  spark::SparkOptions options;
  options.executors_per_node = 2;
  options.app_startup = Millis(200);
  spark::MiniSpark spark(cluster, nullptr, options);

  std::int64_t keys = -1;
  std::optional<Result<spark::AppResult>> outcome;
  spark.Submit(
      [&](spark::SparkContext& sc) {
        std::vector<std::pair<std::int64_t, std::int64_t>> data;
        for (std::int64_t i = 0; i < 4000; ++i) data.emplace_back(i % 97, i);
        auto reduced = sc.Parallelize(std::move(data), 2 * nodes)
                           .AsPairs<std::int64_t, std::int64_t>()
                           .ReduceByKey([](std::int64_t a, std::int64_t b) {
                             return a + b;
                           });
        auto first = reduced.Count();   // materialize the shuffle
        sc.ctx().SleepUntil(30.0);      // failure lands here
        auto second = reduced.Count();  // needs the lost shuffle outputs
        if (second.ok()) keys = second.value();
      },
      [&](Result<spark::AppResult> result) { outcome = std::move(result); });
  cluster.FailNode(nodes - 1, 20.0);
  auto run = engine.Run();

  const bool ok = run.status.ok() && outcome.has_value() && outcome->ok() &&
                  keys == 97;
  std::printf("Spark + node failure: %s", ok ? "job COMPLETED" : "job FAILED");
  if (ok) {
    std::printf(" (97/97 keys correct, %llu fetch failures recovered, "
                "%.1fs simulated)\n",
                static_cast<unsigned long long>(
                    (*outcome)->stats.fetch_failures),
                (*outcome)->elapsed);
  } else {
    std::printf("\n");
  }
  bench::Observability::Instance().Collect(engine, "spark+failure");
  return ok;
}

bool RunMpiWithFailure(int nodes) {
  sim::Engine engine;
  bench::Observability::Instance().Attach(engine);
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  mpi::World world(cluster, nodes * 2, 2);
  world.SpawnRanks([](mpi::Comm& comm) {
    // An iterative allreduce loop, the typical HPC inner kernel.
    std::vector<double> value{1.0};
    std::vector<double> sum(1);
    for (int i = 0; i < 100; ++i) {
      comm.ctx().SleepFor(0.5);
      comm.Allreduce<double>(value, sum);
    }
  });
  cluster.FailNode(nodes - 1, 20.0);
  auto run = engine.Run();
  // Losing ranks leaves the collective stuck: the job aborts (the engine
  // reports the surviving ranks deadlocked in Recv).
  const bool aborted = run.killed > 0;
  std::printf("MPI   + node failure: %s\n",
              aborted ? "job ABORTED (no recovery path)"
                      : "job unexpectedly survived");
  bench::Observability::Instance().Collect(engine, "mpi+failure");
  return aborted;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Observability::Instance().ParseFlags(&argc, argv);
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));
  std::printf("Injecting a node failure at t=20s into both paradigms:\n\n");
  const bool spark_ok = RunSparkWithFailure(nodes);
  const bool mpi_ok = RunMpiWithFailure(nodes);
  std::printf(
      "\nTakeaway (paper §VI-D): lineage lets Spark recompute exactly the "
      "lost partitions;\nMPI applications need external "
      "checkpoint/restart to survive the same fault.\n");
  if (!bench::Observability::Instance().Finish()) return 1;
  return spark_ok && mpi_ok ? 0 : 2;
}
