// AnswersCount with MiniOMP (the paper's single-node OpenMP baseline).
//
// The dataset is read from one node's local scratch; the counting kernel
// runs for real on a MiniOMP thread pool, and the simulated clock is
// charged for the full-size (modeled) workload divided across the cores.
//
//   ./build/examples/answerscount_omp [threads=8] [mb=8] [scale=0.001]
#include <cstdio>

#include "example_util.h"
#include "omp/omp.h"

using namespace pstk;

namespace {
// Native (non-JVM) per-byte processing cost of the counting kernel.
constexpr SimTime kNativeCpuPerByte = 1.0 / 1.2e9;  // ~1.2 GB/s per core
}  // namespace

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int threads = static_cast<int>(config->GetInt("threads", 8));
  const Bytes actual = MiB(static_cast<double>(config->GetInt("mb", 8)));
  const double scale = config->GetDouble("scale", 0.001);

  auto env = examples::MakeEnv(/*nodes=*/1, scale);
  const auto truth =
      examples::StagePosts(*env, actual, "", "/scratch/posts.txt");

  workloads::StackExchangeStats counted;
  SimTime elapsed = 0;
  env->engine.Spawn("omp-job", [&](sim::Context& ctx) {
    using workloads::CountPosts;
    // BENCHMARK-BEGIN
    auto text = env->cluster->scratch(0).ReadAll(ctx, "/scratch/posts.txt");
    if (!text.ok()) return;
    omp::Runtime rt(threads);
    // #pragma omp parallel for reduction(+): each thread counts one byte
    // chunk; chunks end at line boundaries, non-first chunks skip their
    // partial first line.
    const auto total = rt.ParallelReduce<workloads::StackExchangeStats>(
        0, threads, {},
        [&](std::int64_t lo, std::int64_t) {
          const std::string& t = text.value();
          const std::size_t begin = t.size() * lo / threads;
          std::size_t end = t.size() * (lo + 1) / threads;
          if (end < t.size()) end = t.find('\n', end) + 1;
          return CountPosts(std::string_view(t).substr(begin, end - begin),
                            /*skip_partial_first=*/lo > 0);
        },
        [](workloads::StackExchangeStats x, workloads::StackExchangeStats y) {
          x.questions += y.questions;
          x.answers += y.answers;
          return x;
        },
        omp::Schedule::kStatic, /*chunk=*/1);
    // BENCHMARK-END
    counted = total;

    // Simulation bookkeeping: charge the modeled CPU of the full-size scan.
    const double modeled_bytes = static_cast<double>(
        env->cluster->Modeled(text.value().size()));
    const double efficiency = 1.0 / (1.0 + 0.02 * (threads - 1));
    ctx.Compute(modeled_bytes * kNativeCpuPerByte /
                (static_cast<double>(threads) * efficiency));
    elapsed = ctx.now();
  });
  auto run = env->engine.Run();
  if (!run.status.ok()) {
    std::fprintf(stderr, "%s\n", run.status.ToString().c_str());
    return 1;
  }

  std::printf("OpenMP AnswersCount (%d threads, %s modeled)\n", threads,
              FormatBytes(env->cluster->Modeled(actual)).c_str());
  std::printf("  questions=%llu answers=%llu avg=%.3f (truth %.3f)\n",
              static_cast<unsigned long long>(counted.questions),
              static_cast<unsigned long long>(counted.answers),
              counted.AverageAnswers(), truth.AverageAnswers());
  std::printf("  simulated time: %s\n", FormatDuration(elapsed).c_str());
  return counted.questions == truth.questions &&
                 counted.answers == truth.answers
             ? 0
             : 2;
}
