// Quickstart: word count with MiniSpark on a simulated 4-node cluster.
//
//   ./build/examples/quickstart [nodes=4]
//
// Demonstrates the three core steps of every ParaStack program:
//   1. build a simulated cluster (engine + nodes + fabrics + disks),
//   2. stage input data (here: a small text file in MiniDFS),
//   3. run a framework program on it and read the results.
#include <cstdio>

#include "cluster/cluster.h"
#include "common/config.h"
#include "dfs/dfs.h"
#include "sim/engine.h"
#include "spark/spark.h"

using namespace pstk;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const int nodes = static_cast<int>(config->GetInt("nodes", 4));

  // 1. A Comet-like cluster (Table I of the paper).
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterSpec::Comet(nodes));
  dfs::MiniDfs dfs(cluster);

  // 2. Stage input: a few hundred lines of text in the DFS.
  std::string text;
  for (int i = 0; i < 400; ++i) {
    text += "to be or not to be that is the question\n";
    text += "the slings and arrows of outrageous fortune\n";
  }
  if (auto s = dfs.Install("/data/hamlet.txt", text); !s.ok()) {
    std::fprintf(stderr, "install: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Run a Spark word count.
  spark::SparkOptions options;
  options.executors_per_node = 4;
  spark::MiniSpark spark(cluster, &dfs, options);
  auto result = spark.RunApp([](spark::SparkContext& sc) {
    auto lines = sc.TextFile("/data/hamlet.txt");
    if (!lines.ok()) return;
    auto counts =
        lines->FlatMap<std::string>([](const std::string& line) {
               std::vector<std::string> words;
               std::size_t pos = 0;
               while (pos < line.size()) {
                 auto sp = line.find(' ', pos);
                 if (sp == std::string::npos) sp = line.size();
                 if (sp > pos) words.push_back(line.substr(pos, sp - pos));
                 pos = sp + 1;
               }
               return words;
             })
            .KeyBy<std::string>([](const std::string& w) { return w; })
            .MapValues<std::int64_t>([](const std::string&) { return 1; })
            .ReduceByKey([](std::int64_t a, std::int64_t b) { return a + b; });
    auto top = counts.CollectAsMap();
    if (!top.ok()) return;
    std::printf("distinct words: %zu\n", top->size());
    std::printf("count(the) = %lld\n",
                static_cast<long long>(top->at("the")));
    std::printf("count(be)  = %lld\n", static_cast<long long>(top->at("be")));
  });

  if (!result.ok()) {
    std::fprintf(stderr, "app failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated app time: %.3f s (tasks: %llu, shuffled: %llu B)\n",
              result->elapsed,
              static_cast<unsigned long long>(result->stats.tasks_launched),
              static_cast<unsigned long long>(
                  result->stats.shuffle_fetched_bytes));
  return 0;
}
